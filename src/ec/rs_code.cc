#include "ec/rs_code.hh"

#include <algorithm>

#include "util/logging.hh"

namespace chameleon {
namespace ec {

namespace {

gf::Matrix
buildRsGenerator(int k, int m)
{
    gf::Matrix gen(static_cast<std::size_t>(k + m),
                   static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
        gen.set(i, i, gf::kOne);
    gf::Matrix parity = gf::Matrix::cauchy(static_cast<std::size_t>(m),
                                           static_cast<std::size_t>(k));
    for (int r = 0; r < m; ++r)
        for (int c = 0; c < k; ++c)
            gen.set(k + r, c, parity.at(r, c));
    return gen;
}

} // namespace

RsCode::RsCode(int k, int m)
    : LinearCode(k, m, buildRsGenerator(k, m))
{
    CHAMELEON_ASSERT(k + m <= 256, "RS(", k, ",", m,
                     ") exceeds GF(2^8) limit");
}

std::string
RsCode::name() const
{
    return "RS(" + std::to_string(k()) + "," + std::to_string(m()) + ")";
}

RepairSpec
RsCode::makeRepairSpec(ChunkIndex failed,
                       std::span<const ChunkIndex> available,
                       Rng &rng) const
{
    CHAMELEON_ASSERT(available.size() >= static_cast<std::size_t>(k()),
                     name(), " repair needs >= ", k(), " survivors, got ",
                     available.size());
    // Fisher-Yates partial shuffle for a uniform k-subset.
    std::vector<ChunkIndex> pool(available.begin(), available.end());
    for (int i = 0; i < k(); ++i) {
        auto j = static_cast<std::size_t>(i) +
                 rng.below(pool.size() - static_cast<std::size_t>(i));
        std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
    }
    pool.resize(static_cast<std::size_t>(k()));
    return specFromHelpers(failed, pool);
}

HelperPool
RsCode::helperPool(ChunkIndex failed,
                   std::span<const ChunkIndex> available) const
{
    (void)failed;
    HelperPool pool;
    pool.candidates.assign(available.begin(), available.end());
    pool.required = k();
    pool.fixedSet = false;
    pool.combinable = true;
    return pool;
}

} // namespace ec
} // namespace chameleon
