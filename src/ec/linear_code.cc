#include "ec/linear_code.hh"

#include <algorithm>

#include "util/logging.hh"

namespace chameleon {
namespace ec {

LinearCode::LinearCode(int k, int m, gf::Matrix gen)
    : k_(k), m_(m), gen_(std::move(gen))
{
    CHAMELEON_ASSERT(k >= 1 && m >= 1, "k and m must be positive");
    CHAMELEON_ASSERT(gen_.rows() == static_cast<std::size_t>(k + m) &&
                     gen_.cols() == static_cast<std::size_t>(k),
                     "generator must be (k+m) x k");
    // Systematic check: identity on the first k rows.
    for (int i = 0; i < k; ++i) {
        for (int j = 0; j < k; ++j) {
            gf::Elem want = (i == j) ? gf::kOne : gf::kZero;
            CHAMELEON_ASSERT(gen_.at(i, j) == want,
                             "generator is not systematic at (", i,
                             ",", j, ")");
        }
    }
}

std::vector<Buffer>
LinearCode::encode(const std::vector<Buffer> &data) const
{
    CHAMELEON_ASSERT(data.size() == static_cast<std::size_t>(k_),
                     "encode expects ", k_, " data chunks, got ",
                     data.size());
    const std::size_t size = data[0].size();
    for (const auto &d : data)
        CHAMELEON_ASSERT(d.size() == size, "chunk sizes differ");

    // One fused kernel call per parity chunk: the row of G applied to
    // all k data chunks in a single cache-blocked pass.
    std::vector<const gf::Elem *> srcs(static_cast<std::size_t>(k_));
    for (int j = 0; j < k_; ++j)
        srcs[static_cast<std::size_t>(j)] =
            data[static_cast<std::size_t>(j)].data();
    std::vector<gf::Elem> coeffs(static_cast<std::size_t>(k_));
    std::vector<Buffer> parity(m_, Buffer(size, 0));
    for (int p = 0; p < m_; ++p) {
        for (int j = 0; j < k_; ++j)
            coeffs[static_cast<std::size_t>(j)] = gen_.at(k_ + p, j);
        gf::mulAddRegionMulti(std::span<uint8_t>(parity[p]), srcs,
                              coeffs);
    }
    return parity;
}

std::optional<std::vector<gf::Elem>>
LinearCode::repairCoeffs(ChunkIndex failed,
                         std::span<const ChunkIndex> helpers) const
{
    const auto h = helpers.size();
    CHAMELEON_ASSERT(failed >= 0 && failed < n(), "bad failed index");
    for (auto idx : helpers) {
        CHAMELEON_ASSERT(idx >= 0 && idx < n(), "bad helper index");
        CHAMELEON_ASSERT(idx != failed, "helper equals failed chunk");
    }

    // Solve M x = b where column i of M is G[helpers[i]] (length k)
    // and b = G[failed]. Gaussian elimination on the k x (h+1)
    // augmented matrix; free variables default to zero.
    const std::size_t rows = static_cast<std::size_t>(k_);
    std::vector<std::vector<gf::Elem>> aug(
        rows, std::vector<gf::Elem>(h + 1, 0));
    for (std::size_t c = 0; c < rows; ++c) {
        for (std::size_t i = 0; i < h; ++i)
            aug[c][i] = gen_.at(static_cast<std::size_t>(helpers[i]), c);
        aug[c][h] = gen_.at(static_cast<std::size_t>(failed), c);
    }

    std::vector<std::size_t> pivot_col_of_row(rows, h);
    std::size_t rank = 0;
    for (std::size_t col = 0; col < h && rank < rows; ++col) {
        std::size_t piv = rank;
        while (piv < rows && aug[piv][col] == 0)
            ++piv;
        if (piv == rows)
            continue;
        std::swap(aug[rank], aug[piv]);
        gf::Elem piv_inv = gf::inv(aug[rank][col]);
        for (std::size_t j = col; j <= h; ++j)
            aug[rank][j] = gf::mul(aug[rank][j], piv_inv);
        for (std::size_t r = 0; r < rows; ++r) {
            if (r == rank || aug[r][col] == 0)
                continue;
            gf::Elem f = aug[r][col];
            for (std::size_t j = col; j <= h; ++j)
                aug[r][j] = gf::add(aug[r][j],
                                    gf::mul(f, aug[rank][j]));
        }
        pivot_col_of_row[rank] = col;
        ++rank;
    }
    // Inconsistency check: a zero row with nonzero RHS.
    for (std::size_t r = rank; r < rows; ++r) {
        bool all_zero = true;
        for (std::size_t j = 0; j < h; ++j) {
            if (aug[r][j] != 0) {
                all_zero = false;
                break;
            }
        }
        if (all_zero && aug[r][h] != 0)
            return std::nullopt;
    }

    std::vector<gf::Elem> x(h, 0);
    for (std::size_t r = 0; r < rank; ++r)
        x[pivot_col_of_row[r]] = aug[r][h];
    return x;
}

bool
LinearCode::canRepairWith(ChunkIndex failed,
                          std::span<const ChunkIndex> helpers) const
{
    return repairCoeffs(failed, helpers).has_value();
}

RepairSpec
LinearCode::specFromHelpers(ChunkIndex failed,
                            std::span<const ChunkIndex> helpers) const
{
    auto coeffs = repairCoeffs(failed, helpers);
    CHAMELEON_ASSERT(coeffs.has_value(),
                     "helpers cannot repair chunk ", failed);
    RepairSpec spec;
    spec.failed = failed;
    spec.combinable = true;
    spec.reads.reserve(helpers.size());
    for (std::size_t i = 0; i < helpers.size(); ++i) {
        // A zero coefficient means this helper contributes nothing;
        // dropping it keeps repair traffic minimal.
        if ((*coeffs)[i] == 0)
            continue;
        spec.reads.push_back(RepairRead{helpers[i], 1.0, (*coeffs)[i]});
    }
    return spec;
}

std::optional<RepairSpec>
LinearCode::specFor(ChunkIndex failed,
                    std::span<const ChunkIndex> helpers) const
{
    if (!repairCoeffs(failed, helpers))
        return std::nullopt;
    return specFromHelpers(failed, helpers);
}

Buffer
LinearCode::repairCompute(const RepairSpec &spec,
                          const std::vector<Buffer> &helper_data) const
{
    CHAMELEON_ASSERT(helper_data.size() == spec.reads.size(),
                     "helper data count mismatch");
    CHAMELEON_ASSERT(!helper_data.empty(), "no helper data");
    const std::size_t size = helper_data[0].size();
    std::vector<const gf::Elem *> srcs(helper_data.size());
    std::vector<gf::Elem> coeffs(helper_data.size());
    for (std::size_t i = 0; i < helper_data.size(); ++i) {
        CHAMELEON_ASSERT(helper_data[i].size() == size,
                         "helper chunk sizes differ");
        srcs[i] = helper_data[i].data();
        coeffs[i] = spec.reads[i].coeff;
    }
    Buffer out(size, 0);
    gf::mulAddRegionMulti(std::span<uint8_t>(out), srcs, coeffs);
    return out;
}

namespace {

/** Ascending survivor list: [0, n) minus the erased set. */
std::vector<ChunkIndex>
survivorsOf(int n, std::span<const ChunkIndex> erased)
{
    std::vector<bool> gone(static_cast<std::size_t>(n), false);
    for (auto e : erased)
        gone[static_cast<std::size_t>(e)] = true;
    std::vector<ChunkIndex> out;
    out.reserve(static_cast<std::size_t>(n) - erased.size());
    for (ChunkIndex i = 0; i < n; ++i)
        if (!gone[static_cast<std::size_t>(i)])
            out.push_back(i);
    return out;
}

} // namespace

bool
LinearCode::canRepair(std::span<const ChunkIndex> erased) const
{
    if (erased.empty())
        return true;
    for (auto e : erased)
        CHAMELEON_ASSERT(e >= 0 && e < n(), "bad erased index ", e);
    auto survivors = survivorsOf(n(), erased);
    if (survivors.size() < static_cast<std::size_t>(k_))
        return false;
    for (auto e : erased)
        if (!repairCoeffs(e, survivors))
            return false;
    return true;
}

std::optional<std::vector<ChunkIndex>>
LinearCode::repairIndices(std::span<const ChunkIndex> erased) const
{
    if (erased.empty())
        return std::vector<ChunkIndex>{};
    for (auto e : erased)
        CHAMELEON_ASSERT(e >= 0 && e < n(), "bad erased index ", e);
    auto survivors = survivorsOf(n(), erased);

    // Seed set: helpers that actually carry a nonzero coefficient in
    // the deterministic (ascending-survivor) solve of each erased row.
    std::vector<bool> used(static_cast<std::size_t>(n()), false);
    for (auto e : erased) {
        auto coeffs = repairCoeffs(e, survivors);
        if (!coeffs)
            return std::nullopt;
        for (std::size_t i = 0; i < survivors.size(); ++i)
            if ((*coeffs)[i] != 0)
                used[static_cast<std::size_t>(survivors[i])] = true;
    }
    std::vector<ChunkIndex> helpers;
    for (ChunkIndex i = 0; i < n(); ++i)
        if (used[static_cast<std::size_t>(i)])
            helpers.push_back(i);

    // Prune pass: drop any helper whose removal keeps every erased
    // chunk solvable. Lowest index first keeps the result
    // deterministic; the surviving set is irredundant.
    for (std::size_t i = 0; i < helpers.size();) {
        std::vector<ChunkIndex> without;
        without.reserve(helpers.size() - 1);
        for (std::size_t j = 0; j < helpers.size(); ++j)
            if (j != i)
                without.push_back(helpers[j]);
        bool droppable = true;
        for (auto e : erased) {
            if (!repairCoeffs(e, without)) {
                droppable = false;
                break;
            }
        }
        if (droppable)
            helpers = std::move(without);
        else
            ++i;
    }
    return helpers;
}

std::optional<std::vector<ChunkIndex>>
LinearCode::minimalHelpersFor(
    ChunkIndex failed, std::span<const ChunkIndex> candidates) const
{
    std::vector<ChunkIndex> sorted(candidates.begin(),
                                   candidates.end());
    std::sort(sorted.begin(), sorted.end());
    auto coeffs = repairCoeffs(failed, sorted);
    if (!coeffs)
        return std::nullopt;
    std::vector<ChunkIndex> helpers;
    for (std::size_t i = 0; i < sorted.size(); ++i)
        if ((*coeffs)[i] != 0)
            helpers.push_back(sorted[i]);
    for (std::size_t i = 0; i < helpers.size();) {
        std::vector<ChunkIndex> without;
        without.reserve(helpers.size() - 1);
        for (std::size_t j = 0; j < helpers.size(); ++j)
            if (j != i)
                without.push_back(helpers[j]);
        if (repairCoeffs(failed, without))
            helpers = std::move(without);
        else
            ++i;
    }
    return helpers;
}

int
LinearCode::guaranteedRepairableCount() const
{
    // Level f is guaranteed iff every size-f pattern repairs. Erasing
    // more than m chunks leaves fewer than k survivor rows, so m is a
    // hard cap and the enumeration is over at most C(n, m) patterns.
    for (int f = 1; f <= m_; ++f) {
        std::vector<ChunkIndex> pattern(static_cast<std::size_t>(f));
        // Lexicographic enumeration of all f-subsets of [0, n).
        for (int i = 0; i < f; ++i)
            pattern[static_cast<std::size_t>(i)] = i;
        while (true) {
            if (!canRepair(pattern))
                return f - 1;
            int i = f - 1;
            while (i >= 0 &&
                   pattern[static_cast<std::size_t>(i)] ==
                       n() - f + i)
                --i;
            if (i < 0)
                break;
            ++pattern[static_cast<std::size_t>(i)];
            for (int j = i + 1; j < f; ++j)
                pattern[static_cast<std::size_t>(j)] =
                    pattern[static_cast<std::size_t>(j - 1)] + 1;
        }
    }
    return m_;
}

bool
LinearCode::decode(std::vector<Buffer> &chunks) const
{
    CHAMELEON_ASSERT(chunks.size() == static_cast<std::size_t>(n()),
                     "decode expects ", n(), " chunk slots");
    std::vector<ChunkIndex> survivors;
    std::vector<ChunkIndex> missing;
    std::size_t size = 0;
    for (ChunkIndex i = 0; i < n(); ++i) {
        if (chunks[i].empty()) {
            missing.push_back(i);
        } else {
            survivors.push_back(i);
            size = chunks[i].size();
        }
    }
    if (missing.empty())
        return true;

    // A missing chunk is recoverable iff its generator row lies in
    // the span of the survivor rows; expressing it as a combination
    // handles both MDS (RS) and non-MDS (LRC) patterns uniformly.
    std::vector<std::vector<gf::Elem>> coeff_sets;
    coeff_sets.reserve(missing.size());
    for (ChunkIndex miss : missing) {
        auto coeffs = repairCoeffs(miss, survivors);
        if (!coeffs)
            return false;
        coeff_sets.push_back(std::move(*coeffs));
    }
    std::vector<const gf::Elem *> srcs(survivors.size());
    for (std::size_t i = 0; i < survivors.size(); ++i)
        srcs[i] =
            chunks[static_cast<std::size_t>(survivors[i])].data();
    for (std::size_t mi = 0; mi < missing.size(); ++mi) {
        Buffer out(size, 0);
        gf::mulAddRegionMulti(std::span<uint8_t>(out), srcs,
                              coeff_sets[mi]);
        chunks[static_cast<std::size_t>(missing[mi])] = std::move(out);
    }
    return true;
}

} // namespace ec
} // namespace chameleon
