/**
 * @file
 * Portable CRC32C variants (bitwise reference + slicing-by-8 SWAR),
 * xxHash64, the one-time kernel dispatch (mirroring gf_dispatch.cc),
 * and the SliceChecksums sidecar.
 */

#include "ec/checksum.hh"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace ec {
namespace checksum {
namespace detail {

namespace {

/** Reflected CRC32C (Castagnoli) polynomial. */
constexpr uint32_t kPoly = 0x82F63B78u;

uint32_t
crc32cScalar(uint32_t crc, const uint8_t *data, std::size_t len)
{
    crc = ~crc;
    for (std::size_t i = 0; i < len; ++i) {
        crc ^= data[i];
        for (int b = 0; b < 8; ++b)
            crc = (crc >> 1) ^ (kPoly & (0u - (crc & 1u)));
    }
    return ~crc;
}

/** Slicing-by-8 tables: table[t][b] advances a CRC whose low byte is
 * b by 8-t more zero bytes. Built once, lazily. */
struct SliceTables
{
    uint32_t t[8][256];

    SliceTables()
    {
        for (uint32_t b = 0; b < 256; ++b) {
            uint32_t crc = b;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc >> 1) ^ (kPoly & (0u - (crc & 1u)));
            t[0][b] = crc;
        }
        for (int k = 1; k < 8; ++k) {
            for (uint32_t b = 0; b < 256; ++b)
                t[k][b] =
                    (t[k - 1][b] >> 8) ^ t[0][t[k - 1][b] & 0xFFu];
        }
    }
};

const SliceTables &
sliceTables()
{
    static const SliceTables tables;
    return tables;
}

uint32_t
crc32cSwar(uint32_t crc, const uint8_t *data, std::size_t len)
{
    const auto &tb = sliceTables();
    crc = ~crc;
    while (len >= 8) {
        uint64_t word;
        std::memcpy(&word, data, 8);
        word ^= crc;
        crc = tb.t[7][word & 0xFFu] ^
              tb.t[6][(word >> 8) & 0xFFu] ^
              tb.t[5][(word >> 16) & 0xFFu] ^
              tb.t[4][(word >> 24) & 0xFFu] ^
              tb.t[3][(word >> 32) & 0xFFu] ^
              tb.t[2][(word >> 40) & 0xFFu] ^
              tb.t[1][(word >> 48) & 0xFFu] ^
              tb.t[0][(word >> 56) & 0xFFu];
        data += 8;
        len -= 8;
    }
    while (len--) {
        crc = (crc >> 8) ^ tb.t[0][(crc ^ *data++) & 0xFFu];
    }
    return ~crc;
}

bool
cpuSupports(Isa isa)
{
    switch (isa) {
    case Isa::kScalar:
    case Isa::kSwar:
        return true;
#ifdef CHAMELEON_HAVE_SSE42
    case Isa::kSse42:
        return __builtin_cpu_supports("sse4.2") != 0;
#endif
    default:
        return false;
    }
}

Isa
selectIsa()
{
    const auto avail = availableIsas();
    if (const char *want =
            std::getenv("CHAMELEON_CHECKSUM_KERNEL")) {
        for (Isa isa : avail) {
            if (std::strcmp(want, isaName(isa)) == 0)
                return isa;
        }
        // Unavailable request: fall through to the default order.
    }
    return avail.front();
}

} // namespace

const char *
isaName(Isa isa)
{
    switch (isa) {
    case Isa::kScalar:
        return "scalar";
    case Isa::kSwar:
        return "swar";
    case Isa::kSse42:
        return "sse42";
    }
    return "unknown";
}

std::vector<Isa>
availableIsas()
{
#ifdef CHAMELEON_FORCE_SCALAR
    return {Isa::kScalar};
#else
    std::vector<Isa> out;
#ifdef CHAMELEON_HAVE_SSE42
    if (cpuSupports(Isa::kSse42))
        out.push_back(Isa::kSse42);
#endif
    out.push_back(Isa::kSwar);
    out.push_back(Isa::kScalar);
    return out;
#endif
}

const Kernels &
scalarKernels()
{
    static const Kernels k{&crc32cScalar};
    return k;
}

const Kernels &
swarKernels()
{
    static const Kernels k{&crc32cSwar};
    return k;
}

const Kernels &
kernels(Isa isa)
{
    switch (isa) {
    case Isa::kScalar:
        return scalarKernels();
    case Isa::kSwar:
        return swarKernels();
#ifdef CHAMELEON_HAVE_SSE42
    case Isa::kSse42:
        return sse42Kernels();
#endif
    default:
        CHAMELEON_PANIC("checksum kernel variant ",
                        static_cast<int>(isa), " not compiled in");
    }
}

Isa
activeIsa()
{
    // call_once rather than a magic static: selection may be raced
    // by sweep workers, and the marker counter must resolve in the
    // process-wide registry — never a worker's per-run registry,
    // which would be destroyed with its Runtime.
    static std::once_flag once;
    static Isa isa = Isa::kScalar;
    std::call_once(once, [] {
        isa = selectIsa();
        telemetry::processMetrics()
            .counter(std::string("checksum.kernel.selected.") +
                     isaName(isa))
            .add();
    });
    return isa;
}

const Kernels &
activeKernels()
{
    static const Kernels &k = kernels(activeIsa());
    return k;
}

} // namespace detail

uint32_t
crc32c(const void *data, std::size_t len, uint32_t crc)
{
    return detail::activeKernels().crc32c(
        crc, static_cast<const uint8_t *>(data), len);
}

const char *
kernelName()
{
    return detail::isaName(detail::activeIsa());
}

namespace {

constexpr uint64_t kXxPrime1 = 0x9E3779B185EBCA87ull;
constexpr uint64_t kXxPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kXxPrime3 = 0x165667B19E3779F9ull;
constexpr uint64_t kXxPrime4 = 0x85EBCA77C2B2AE63ull;
constexpr uint64_t kXxPrime5 = 0x27D4EB2F165667C5ull;

inline uint64_t
rotl64(uint64_t v, int r)
{
    return (v << r) | (v >> (64 - r));
}

inline uint64_t
read64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

inline uint32_t
read32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

inline uint64_t
xxRound(uint64_t acc, uint64_t input)
{
    acc += input * kXxPrime2;
    acc = rotl64(acc, 31);
    return acc * kXxPrime1;
}

inline uint64_t
xxMerge(uint64_t acc, uint64_t val)
{
    acc ^= xxRound(0, val);
    return acc * kXxPrime1 + kXxPrime4;
}

} // namespace

uint64_t
xxhash64(const void *data, std::size_t len, uint64_t seed)
{
    const auto *p = static_cast<const uint8_t *>(data);
    const uint8_t *const end = p + len;
    uint64_t h;

    if (len >= 32) {
        uint64_t v1 = seed + kXxPrime1 + kXxPrime2;
        uint64_t v2 = seed + kXxPrime2;
        uint64_t v3 = seed;
        uint64_t v4 = seed - kXxPrime1;
        const uint8_t *const limit = end - 32;
        do {
            v1 = xxRound(v1, read64(p));
            v2 = xxRound(v2, read64(p + 8));
            v3 = xxRound(v3, read64(p + 16));
            v4 = xxRound(v4, read64(p + 24));
            p += 32;
        } while (p <= limit);
        h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) +
            rotl64(v4, 18);
        h = xxMerge(h, v1);
        h = xxMerge(h, v2);
        h = xxMerge(h, v3);
        h = xxMerge(h, v4);
    } else {
        h = seed + kXxPrime5;
    }

    h += static_cast<uint64_t>(len);
    while (p + 8 <= end) {
        h ^= xxRound(0, read64(p));
        h = rotl64(h, 27) * kXxPrime1 + kXxPrime4;
        p += 8;
    }
    if (p + 4 <= end) {
        h ^= static_cast<uint64_t>(read32(p)) * kXxPrime1;
        h = rotl64(h, 23) * kXxPrime2 + kXxPrime3;
        p += 4;
    }
    while (p < end) {
        h ^= *p++ * kXxPrime5;
        h = rotl64(h, 11) * kXxPrime1;
    }

    h ^= h >> 33;
    h *= kXxPrime2;
    h ^= h >> 29;
    h *= kXxPrime3;
    h ^= h >> 32;
    return h;
}

SliceChecksums
SliceChecksums::compute(const uint8_t *data, std::size_t len,
                        std::size_t slice_bytes)
{
    SliceChecksums out;
    if (slice_bytes == 0 || slice_bytes > len)
        slice_bytes = len > 0 ? len : 1;
    out.sliceBytes = slice_bytes;
    out.totalBytes = len;
    for (std::size_t off = 0; off < len; off += slice_bytes) {
        const std::size_t n = std::min(slice_bytes, len - off);
        out.slices.push_back(crc32c(data + off, n));
    }
    return out;
}

int
SliceChecksums::firstMismatch(const uint8_t *data,
                              std::size_t len) const
{
    if (len != totalBytes)
        return 0;
    for (std::size_t s = 0; s < slices.size(); ++s) {
        const std::size_t off = s * sliceBytes;
        const std::size_t n = std::min(sliceBytes, len - off);
        if (crc32c(data + off, n) != slices[s])
            return static_cast<int>(s);
    }
    return -1;
}

} // namespace checksum
} // namespace ec
} // namespace chameleon
