/**
 * @file
 * Systematic Reed-Solomon code RS(k, m) built from a Cauchy parity
 * matrix (every square submatrix of a Cauchy matrix is nonsingular,
 * which makes [I; Cauchy] MDS — the construction Jerasure's cauchy
 * mode and HDFS-EC both rely on).
 */

#ifndef CHAMELEON_EC_RS_CODE_HH_
#define CHAMELEON_EC_RS_CODE_HH_

#include "ec/linear_code.hh"

namespace chameleon {
namespace ec {

/** RS(k, m): repair of any single chunk reads any k survivors. */
class RsCode : public LinearCode
{
  public:
    RsCode(int k, int m);

    std::string name() const override;

    /**
     * Picks k helpers uniformly at random from the survivors, matching
     * the paper's setup ("We randomly select the k sources ... since
     * the random selection can generate more balanced repair traffic
     * in most cases than the LRU-based selection").
     */
    RepairSpec
    makeRepairSpec(ChunkIndex failed,
                   std::span<const ChunkIndex> available,
                   Rng &rng) const override;

    /** Any k of the survivors (MDS property). */
    HelperPool
    helperPool(ChunkIndex failed,
               std::span<const ChunkIndex> available) const override;

    /** MDS: every pattern of up to m erasures repairs. */
    int guaranteedRepairableCount() const override { return m(); }
};

} // namespace ec
} // namespace chameleon

#endif // CHAMELEON_EC_RS_CODE_HH_
