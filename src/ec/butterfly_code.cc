#include "ec/butterfly_code.hh"

#include <algorithm>
#include <array>

#include "gf/gf256.hh"
#include "util/logging.hh"

namespace chameleon {
namespace ec {

namespace {

/** Bitmask over the data symbols (a0, a1, b0, b1) = bits (0,1,2,3). */
using RowMask = unsigned;

/** rowMask[node][row]: which data symbols XOR into that stored row. */
constexpr RowMask kRowMask[4][2] = {
    {0b0001, 0b0010}, // node 0: a0, a1
    {0b0100, 0b1000}, // node 1: b0, b1
    {0b0101, 0b1010}, // node 2: a0^b0, a1^b1
    {0b1001, 0b1110}, // node 3: a0^b1, a1^b0^b1
};

/** One half-chunk read used during repair. */
struct RowRead
{
    ChunkIndex helper;
    int row;
};

/** Repair recipe: reads, then per output row the reads to XOR. */
struct RepairRecipe
{
    std::vector<RowRead> reads;
    std::vector<std::vector<int>> outputs; // indices into reads
};

/** Verified minimal repair recipes (see header derivation). */
const RepairRecipe &
recipeFor(ChunkIndex failed)
{
    static const std::array<RepairRecipe, 4> recipes = {{
        // node 0: a0 = q0 ^ b1, a1 = p1 ^ b1
        {{{1, 1}, {2, 1}, {3, 0}}, {{2, 0}, {1, 0}}},
        // node 1: b0 = p0 ^ a0, b1 = q0 ^ a0
        {{{0, 0}, {2, 0}, {3, 0}}, {{1, 0}, {2, 0}}},
        // node 2: p0 = a0 ^ b0, p1 = q1 ^ b0
        {{{0, 0}, {1, 0}, {3, 1}}, {{0, 1}, {2, 1}}},
        // node 3: q0 = a0 ^ p1 ^ a1, q1 = b0 ^ p1
        {{{0, 0}, {0, 1}, {1, 0}, {2, 1}}, {{0, 3, 1}, {2, 3}}},
    }};
    CHAMELEON_ASSERT(failed >= 0 && failed < 4, "bad failed index");
    return recipes[static_cast<std::size_t>(failed)];
}

std::span<const uint8_t>
rowOf(const Buffer &chunk, int row)
{
    const std::size_t half = chunk.size() / 2;
    return std::span<const uint8_t>(chunk).subspan(
        static_cast<std::size_t>(row) * half, half);
}

std::span<uint8_t>
rowOf(Buffer &chunk, int row)
{
    const std::size_t half = chunk.size() / 2;
    return std::span<uint8_t>(chunk).subspan(
        static_cast<std::size_t>(row) * half, half);
}

} // namespace

std::vector<Buffer>
ButterflyCode::encode(const std::vector<Buffer> &data) const
{
    CHAMELEON_ASSERT(data.size() == 2, "Butterfly(4,2) takes 2 chunks");
    const std::size_t size = data[0].size();
    CHAMELEON_ASSERT(data[1].size() == size, "chunk sizes differ");
    CHAMELEON_ASSERT(size % 2 == 0,
                     "Butterfly needs an even chunk size, got ", size);

    std::vector<Buffer> parity(2, Buffer(size, 0));
    // Symbol buffers: a0,a1 from data[0]; b0,b1 from data[1].
    std::array<std::span<const uint8_t>, 4> sym = {
        rowOf(data[0], 0), rowOf(data[0], 1),
        rowOf(data[1], 0), rowOf(data[1], 1)};
    for (int node = 2; node < 4; ++node) {
        for (int row = 0; row < 2; ++row) {
            auto dst = rowOf(parity[static_cast<std::size_t>(node - 2)],
                             row);
            RowMask mask = kRowMask[node][row];
            // One fused XOR pass over all symbols in the mask.
            std::array<const gf::Elem *, 4> srcs;
            std::array<gf::Elem, 4> coeffs;
            std::size_t cnt = 0;
            for (int s = 0; s < 4; ++s) {
                if (mask & (1u << s)) {
                    srcs[cnt] =
                        sym[static_cast<std::size_t>(s)].data();
                    coeffs[cnt] = gf::kOne;
                    ++cnt;
                }
            }
            gf::mulAddRegionMulti(
                dst, std::span<const gf::Elem *const>(srcs.data(), cnt),
                std::span<const gf::Elem>(coeffs.data(), cnt));
        }
    }
    return parity;
}

RepairSpec
ButterflyCode::makeRepairSpec(ChunkIndex failed,
                              std::span<const ChunkIndex> available,
                              Rng &rng) const
{
    (void)rng; // the recipe is fixed; no helper choice exists
    for (ChunkIndex node = 0; node < 4; ++node) {
        if (node == failed)
            continue;
        CHAMELEON_ASSERT(
            std::find(available.begin(), available.end(), node) !=
                available.end(),
            name(), " single-chunk repair needs all three survivors");
    }
    const RepairRecipe &recipe = recipeFor(failed);
    RepairSpec spec;
    spec.failed = failed;
    spec.combinable = false;
    // Aggregate per-helper fractions (node 0 contributes both rows
    // when repairing Q).
    for (const RowRead &rr : recipe.reads) {
        auto it = std::find_if(spec.reads.begin(), spec.reads.end(),
                               [&](const RepairRead &r) {
                                   return r.helper == rr.helper;
                               });
        if (it == spec.reads.end()) {
            spec.reads.push_back(RepairRead{rr.helper, 0.5, gf::kOne});
        } else {
            it->fraction += 0.5;
        }
    }
    return spec;
}

HelperPool
ButterflyCode::helperPool(ChunkIndex failed,
                          std::span<const ChunkIndex> available) const
{
    HelperPool pool;
    pool.combinable = false;
    pool.fixedSet = true;
    for (ChunkIndex node = 0; node < 4; ++node) {
        if (node == failed)
            continue;
        CHAMELEON_ASSERT(
            std::find(available.begin(), available.end(), node) !=
                available.end(),
            name(), " repair needs all three survivors");
        pool.candidates.push_back(node);
    }
    pool.required = 3;
    return pool;
}

std::optional<RepairSpec>
ButterflyCode::specFor(ChunkIndex failed,
                       std::span<const ChunkIndex> helpers) const
{
    // The recipe is fixed: only the full survivor set works.
    std::vector<ChunkIndex> want;
    for (ChunkIndex node = 0; node < 4; ++node)
        if (node != failed)
            want.push_back(node);
    if (helpers.size() != want.size())
        return std::nullopt;
    for (ChunkIndex w : want)
        if (std::find(helpers.begin(), helpers.end(), w) == helpers.end())
            return std::nullopt;
    Rng dummy(0);
    return makeRepairSpec(failed, want, dummy);
}

Buffer
ButterflyCode::repairCompute(const RepairSpec &spec,
                             const std::vector<Buffer> &helper_data) const
{
    CHAMELEON_ASSERT(helper_data.size() == spec.reads.size(),
                     "helper data count mismatch");
    const RepairRecipe &recipe = recipeFor(spec.failed);
    const std::size_t size = helper_data[0].size();
    CHAMELEON_ASSERT(size % 2 == 0, "odd chunk size");

    // Map helper chunk index -> position in helper_data.
    auto chunk_of = [&](ChunkIndex helper) -> const Buffer & {
        for (std::size_t i = 0; i < spec.reads.size(); ++i)
            if (spec.reads[i].helper == helper)
                return helper_data[i];
        CHAMELEON_PANIC("helper ", helper, " not in spec");
    };

    Buffer out(size, 0);
    for (int row = 0; row < 2; ++row) {
        auto dst = rowOf(out, row);
        std::array<const gf::Elem *, 4> srcs;
        std::array<gf::Elem, 4> coeffs;
        std::size_t cnt = 0;
        for (int ri : recipe.outputs[static_cast<std::size_t>(row)]) {
            const RowRead &rr =
                recipe.reads[static_cast<std::size_t>(ri)];
            srcs[cnt] = rowOf(chunk_of(rr.helper), rr.row).data();
            coeffs[cnt] = gf::kOne;
            ++cnt;
        }
        gf::mulAddRegionMulti(
            dst, std::span<const gf::Elem *const>(srcs.data(), cnt),
            std::span<const gf::Elem>(coeffs.data(), cnt));
    }
    return out;
}

bool
ButterflyCode::canRepair(std::span<const ChunkIndex> erased) const
{
    for (auto e : erased)
        CHAMELEON_ASSERT(e >= 0 && e < 4, "bad erased index ", e);
    return erased.size() <= 2;
}

std::optional<std::vector<ChunkIndex>>
ButterflyCode::repairIndices(std::span<const ChunkIndex> erased) const
{
    if (!canRepair(erased))
        return std::nullopt;
    // Both repair recipes and two-loss decode read every survivor.
    std::array<bool, 4> gone = {false, false, false, false};
    for (auto e : erased)
        gone[static_cast<std::size_t>(e)] = true;
    std::vector<ChunkIndex> helpers;
    for (ChunkIndex i = 0; i < 4; ++i)
        if (!gone[static_cast<std::size_t>(i)])
            helpers.push_back(i);
    if (erased.empty())
        helpers.clear();
    return helpers;
}

bool
ButterflyCode::decode(std::vector<Buffer> &chunks) const
{
    CHAMELEON_ASSERT(chunks.size() == 4, "Butterfly stripe has 4 chunks");
    std::size_t size = 0;
    int present = 0;
    for (const auto &c : chunks) {
        if (!c.empty()) {
            ++present;
            size = c.size();
        }
    }
    if (present == 4)
        return true;
    if (present < 2)
        return false;
    CHAMELEON_ASSERT(size % 2 == 0, "odd chunk size");
    const std::size_t half = size / 2;

    // Gauss-Jordan over GF(2): equations (mask, row bytes) from the
    // surviving rows; unknowns are the four data symbols.
    std::array<Buffer, 4> sym;
    std::vector<std::pair<RowMask, Buffer>> sys;
    for (int node = 0; node < 4; ++node) {
        const auto &c = chunks[static_cast<std::size_t>(node)];
        if (c.empty())
            continue;
        for (int row = 0; row < 2; ++row) {
            auto r = rowOf(c, row);
            sys.emplace_back(kRowMask[node][row],
                             Buffer(r.begin(), r.end()));
        }
    }
    std::size_t rank = 0;
    for (int s = 0; s < 4 && rank < sys.size(); ++s) {
        std::size_t piv = rank;
        while (piv < sys.size() && !(sys[piv].first & (1u << s)))
            ++piv;
        if (piv == sys.size())
            continue;
        std::swap(sys[rank], sys[piv]);
        for (std::size_t e = 0; e < sys.size(); ++e) {
            if (e != rank && (sys[e].first & (1u << s))) {
                sys[e].first ^= sys[rank].first;
                gf::addRegion(std::span<uint8_t>(sys[e].second),
                              std::span<const uint8_t>(sys[rank].second));
            }
        }
        ++rank;
    }
    for (int s = 0; s < 4; ++s) {
        auto it = std::find_if(sys.begin(), sys.end(),
                               [&](const auto &e) {
                                   return e.first == (1u << s);
                               });
        if (it == sys.end())
            return false; // underdetermined pattern
        sym[static_cast<std::size_t>(s)] = it->second;
        CHAMELEON_ASSERT(sym[static_cast<std::size_t>(s)].size() == half,
                         "solved symbol has wrong size");
    }

    for (int node = 0; node < 4; ++node) {
        auto &c = chunks[static_cast<std::size_t>(node)];
        if (!c.empty())
            continue;
        c.assign(size, 0);
        for (int row = 0; row < 2; ++row) {
            auto dst = rowOf(c, row);
            RowMask mask = kRowMask[node][row];
            std::array<const gf::Elem *, 4> srcs;
            std::array<gf::Elem, 4> coeffs;
            std::size_t cnt = 0;
            for (int s = 0; s < 4; ++s) {
                if (mask & (1u << s)) {
                    srcs[cnt] =
                        sym[static_cast<std::size_t>(s)].data();
                    coeffs[cnt] = gf::kOne;
                    ++cnt;
                }
            }
            gf::mulAddRegionMulti(
                dst, std::span<const gf::Elem *const>(srcs.data(), cnt),
                std::span<const gf::Elem>(coeffs.data(), cnt));
        }
    }
    return true;
}

} // namespace ec
} // namespace chameleon
