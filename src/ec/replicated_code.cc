#include "ec/replicated_code.hh"

#include "util/logging.hh"

namespace chameleon {
namespace ec {

namespace {

gf::Matrix
buildReplicationGenerator(int copies)
{
    CHAMELEON_ASSERT(copies >= 2, "replication needs >= 2 copies");
    gf::Matrix gen(static_cast<std::size_t>(copies), 1);
    for (int i = 0; i < copies; ++i)
        gen.set(static_cast<std::size_t>(i), 0, gf::kOne);
    return gen;
}

} // namespace

ReplicatedCode::ReplicatedCode(int copies)
    : LinearCode(1, copies - 1, buildReplicationGenerator(copies))
{
}

std::string
ReplicatedCode::name() const
{
    return "Replication(x" + std::to_string(n()) + ")";
}

RepairSpec
ReplicatedCode::makeRepairSpec(ChunkIndex failed,
                               std::span<const ChunkIndex> available,
                               Rng &rng) const
{
    CHAMELEON_ASSERT(!available.empty(),
                     "no surviving replica for chunk ", failed);
    std::vector<ChunkIndex> helper = {
        available[rng.below(available.size())]};
    return specFromHelpers(failed, helper);
}

HelperPool
ReplicatedCode::helperPool(ChunkIndex failed,
                           std::span<const ChunkIndex> available) const
{
    (void)failed;
    HelperPool pool;
    pool.candidates.assign(available.begin(), available.end());
    pool.required = 1;
    pool.fixedSet = false;
    pool.combinable = true;
    return pool;
}

} // namespace ec
} // namespace chameleon
