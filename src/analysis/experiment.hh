/**
 * @file
 * Compatibility forwarder: the experiment harness moved to
 * src/runtime (scenario/runtime split). Existing includes of
 * analysis/experiment.hh keep working; new code should include
 * runtime/experiment.hh (and runtime/runtime.hh, runtime/sweep.hh)
 * directly.
 */

#ifndef CHAMELEON_ANALYSIS_EXPERIMENT_HH_
#define CHAMELEON_ANALYSIS_EXPERIMENT_HH_

#include "runtime/experiment.hh"

namespace chameleon {
namespace analysis {

using runtime::Algorithm;
using runtime::algorithmFromKey;
using runtime::algorithmKey;
using runtime::algorithmName;
using runtime::ExperimentConfig;
using runtime::ExperimentHooks;
using runtime::ExperimentResult;
using runtime::LinkLoad;
using runtime::runExperiment;
using runtime::StragglerEvent;

} // namespace analysis
} // namespace chameleon

#endif // CHAMELEON_ANALYSIS_EXPERIMENT_HH_
