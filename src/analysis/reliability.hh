/**
 * @file
 * The paper's reliability model (Section II-B, Figure 2): the
 * probability of data loss during a single-node repair as a function
 * of repair throughput, assuming exponentially distributed node
 * lifetimes.
 */

#ifndef CHAMELEON_ANALYSIS_RELIABILITY_HH_
#define CHAMELEON_ANALYSIS_RELIABILITY_HH_

#include "util/types.hh"

namespace chameleon {
namespace analysis {

/** Parameters of the Figure 2 analysis. */
struct ReliabilityModel
{
    int k = 10;
    int m = 4;
    /** Data per node (paper: 96 TB). */
    Bytes nodeBytes = 96e12;
    /** Expected node lifetime in years (paper: 10). */
    double thetaYears = 10.0;

    /**
     * Probability that a node fails within `tau` seconds:
     * f = 1 - e^(-tau/theta).
     */
    double failureProbability(double tau_seconds) const;

    /**
     * Data-loss probability during a single-node repair running at
     * `repair_throughput` bytes/s: the chance that m or more of the
     * remaining k+m-1 nodes fail before the repair finishes
     * (Equation (2)).
     */
    double dataLossProbability(Rate repair_throughput) const;
};

} // namespace analysis
} // namespace chameleon

#endif // CHAMELEON_ANALYSIS_RELIABILITY_HH_
