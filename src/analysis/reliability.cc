#include "analysis/reliability.hh"

#include <cmath>

#include "util/logging.hh"

namespace chameleon {
namespace analysis {

namespace {

constexpr double kSecondsPerYear = 365.25 * 24 * 3600;

double
binomial(int n, int i)
{
    double acc = 1.0;
    for (int j = 1; j <= i; ++j)
        acc *= static_cast<double>(n - j + 1) / static_cast<double>(j);
    return acc;
}

} // namespace

double
ReliabilityModel::failureProbability(double tau_seconds) const
{
    CHAMELEON_ASSERT(tau_seconds >= 0, "negative duration");
    double theta_seconds = thetaYears * kSecondsPerYear;
    return 1.0 - std::exp(-tau_seconds / theta_seconds);
}

double
ReliabilityModel::dataLossProbability(Rate repair_throughput) const
{
    CHAMELEON_ASSERT(repair_throughput > 0,
                     "repair throughput must be positive");
    const double tau = nodeBytes / repair_throughput;
    const double f = failureProbability(tau);
    const int peers = k + m - 1;
    // Pr_dl = 1 - sum_{i=0}^{m-1} C(peers, i) f^i (1-f)^(peers-i).
    double survive = 0.0;
    for (int i = 0; i < m; ++i) {
        survive += binomial(peers, i) * std::pow(f, i) *
                   std::pow(1.0 - f, peers - i);
    }
    return 1.0 - survive;
}

} // namespace analysis
} // namespace chameleon
