/**
 * @file
 * Internal GF(2^8) region-kernel interface behind the public gf:: API.
 *
 * Each instruction-set variant (scalar reference, portable 64-bit
 * SWAR, SSSE3, AVX2) implements the same small table of region
 * operations; gf_dispatch.cc picks one at startup based on compiled-in
 * variants and runtime CPU features. The public entry points in
 * gf256.cc handle the coeff == 0 / coeff == 1 special cases and
 * telemetry, then jump through the selected table, so kernels may
 * assume a general nonzero coefficient.
 *
 * Alignment contract: kernels accept arbitrarily (mis)aligned
 * pointers and any length, including zero — SIMD variants use
 * unaligned loads and fall back to the scalar reference for tails.
 * 64-byte alignment (ec::Buffer) merely avoids cacheline splits.
 *
 * This header is internal to src/gf, tests, and bench; production
 * callers use gf/gf256.hh.
 */

#ifndef CHAMELEON_GF_GF_KERNELS_HH_
#define CHAMELEON_GF_GF_KERNELS_HH_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chameleon {
namespace gf {
namespace detail {

/**
 * Split-nibble product tables for one coefficient c: lo[x] = c * x
 * and hi[x] = c * (x << 4) for x in 0..15. By linearity
 * c * v = lo[v & 0xF] ^ hi[v >> 4], which is exactly one pshufb pair
 * per 16 bytes — the Jerasure/GF-complete SPLIT_TABLE(8,4) scheme.
 */
struct NibbleTables
{
    alignas(16) uint8_t lo[16];
    alignas(16) uint8_t hi[16];
};

/** Builds the split-nibble tables for `c` from the log/exp tables. */
NibbleTables makeNibbleTables(uint8_t c);

/**
 * One ISA variant's region kernels. All pointers are unrestricted in
 * alignment; dst must not overlap any source. Coefficients are
 * nonzero (the dispatcher strips zeros).
 */
struct Kernels
{
    const char *name;
    /** dst[i] ^= c * src[i] for i < n. */
    void (*mulAdd)(uint8_t *dst, const uint8_t *src, std::size_t n,
                   uint8_t c);
    /** dst[i] = c * src[i] for i < n (dst == src allowed). */
    void (*mul)(uint8_t *dst, const uint8_t *src, std::size_t n,
                uint8_t c);
    /** dst[i] ^= src[i] for i < n. */
    void (*add)(uint8_t *dst, const uint8_t *src, std::size_t n);
    /**
     * Fused multi-source axpy: dst[i] ^= XOR_j coeffs[j]*srcs[j][i]
     * for i < n, j < nsrc. Applies every source to a destination
     * block before moving on, so dst traffic stays in cache (SIMD
     * variants keep the accumulator in registers across sources).
     */
    void (*mulAddMulti)(uint8_t *dst, const uint8_t *const *srcs,
                        const uint8_t *coeffs, std::size_t nsrc,
                        std::size_t n);
};

/** Kernel selection order (best last, matching preference). */
enum class Isa {
    kScalar = 0,
    kSwar = 1,
    kSsse3 = 2,
    kAvx2 = 3,
};

/** Human-readable ISA name ("scalar", "swar", "ssse3", "avx2"). */
const char *isaName(Isa isa);

/** Scalar byte-at-a-time log/exp reference (always available). */
const Kernels &scalarKernels();

/** Portable 64-bit SWAR variant (always available). */
const Kernels &swarKernels();

#ifdef CHAMELEON_HAVE_SSSE3
const Kernels &ssse3Kernels();
#endif
#ifdef CHAMELEON_HAVE_AVX2
const Kernels &avx2Kernels();
#endif

/**
 * ISA variants that are compiled in AND usable on this CPU, in
 * preference order (best first). Always contains at least kScalar;
 * exactly {kScalar} when built with -DCHAMELEON_FORCE_SCALAR=ON.
 */
std::vector<Isa> availableIsas();

/** Kernel table for an available ISA (panics otherwise). */
const Kernels &kernels(Isa isa);

/**
 * The ISA the process dispatches through, chosen once on first use:
 * the best available, unless the CHAMELEON_GF_KERNEL environment
 * variable ("scalar", "swar", "ssse3", "avx2") pins an available one.
 */
Isa activeIsa();

/** Kernel table the public gf:: region ops jump through. */
const Kernels &activeKernels();

/**
 * Generic cache-blocked mulAddMulti built on a single-source mulAdd;
 * used by the scalar and SWAR variants.
 */
void blockedMulAddMulti(const Kernels &k, uint8_t *dst,
                        const uint8_t *const *srcs,
                        const uint8_t *coeffs, std::size_t nsrc,
                        std::size_t n);

} // namespace detail
} // namespace gf
} // namespace chameleon

#endif // CHAMELEON_GF_GF_KERNELS_HH_
