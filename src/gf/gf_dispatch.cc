/**
 * @file
 * Runtime kernel selection. The choice is made exactly once, on first
 * use, from three inputs:
 *
 *   1. what was compiled in (-DCHAMELEON_FORCE_SCALAR=ON strips every
 *      non-reference variant; non-x86 builds lack the SIMD TUs);
 *   2. what the CPU supports (__builtin_cpu_supports, so a binary
 *      built with AVX2 TUs still runs correctly on an SSSE3-only or
 *      pre-SSSE3 machine);
 *   3. an optional CHAMELEON_GF_KERNEL environment override
 *      ("scalar" | "swar" | "ssse3" | "avx2"), used by the property
 *      tests and benchmarks to pin a variant; an unavailable request
 *      is ignored with the default order taking over.
 *
 * The selected variant is recorded in the telemetry metrics registry
 * as gf.kernel.selected.<name> so exported metric snapshots identify
 * which codec ran.
 */

#include "gf/gf_kernels.hh"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace gf {
namespace detail {

namespace {

bool
cpuSupports(Isa isa)
{
    switch (isa) {
    case Isa::kScalar:
    case Isa::kSwar:
        return true;
#ifdef CHAMELEON_HAVE_SSSE3
    case Isa::kSsse3:
        return __builtin_cpu_supports("ssse3") != 0;
#endif
#ifdef CHAMELEON_HAVE_AVX2
    case Isa::kAvx2:
        return __builtin_cpu_supports("avx2") != 0;
#endif
    default:
        return false;
    }
}

Isa
selectIsa()
{
    const auto avail = availableIsas();
    if (const char *want = std::getenv("CHAMELEON_GF_KERNEL")) {
        for (Isa isa : avail) {
            if (std::strcmp(want, isaName(isa)) == 0)
                return isa;
        }
        // Unavailable request: fall through to the default order.
    }
    return avail.front();
}

} // namespace

const char *
isaName(Isa isa)
{
    switch (isa) {
    case Isa::kScalar:
        return "scalar";
    case Isa::kSwar:
        return "swar";
    case Isa::kSsse3:
        return "ssse3";
    case Isa::kAvx2:
        return "avx2";
    }
    return "unknown";
}

std::vector<Isa>
availableIsas()
{
#ifdef CHAMELEON_FORCE_SCALAR
    return {Isa::kScalar};
#else
    std::vector<Isa> out;
#ifdef CHAMELEON_HAVE_AVX2
    if (cpuSupports(Isa::kAvx2))
        out.push_back(Isa::kAvx2);
#endif
#ifdef CHAMELEON_HAVE_SSSE3
    if (cpuSupports(Isa::kSsse3))
        out.push_back(Isa::kSsse3);
#endif
    out.push_back(Isa::kSwar);
    out.push_back(Isa::kScalar);
    return out;
#endif
}

const Kernels &
kernels(Isa isa)
{
    switch (isa) {
    case Isa::kScalar:
        return scalarKernels();
    case Isa::kSwar:
        return swarKernels();
#ifdef CHAMELEON_HAVE_SSSE3
    case Isa::kSsse3:
        return ssse3Kernels();
#endif
#ifdef CHAMELEON_HAVE_AVX2
    case Isa::kAvx2:
        return avx2Kernels();
#endif
    default:
        CHAMELEON_PANIC("GF kernel variant ", static_cast<int>(isa),
                        " not compiled in");
    }
}

Isa
activeIsa()
{
    // call_once rather than a magic static: selection may be raced
    // by sweep workers, and the marker counter must resolve in the
    // process-wide registry — never a worker's per-run registry,
    // which would be destroyed with its Runtime.
    static std::once_flag once;
    static Isa isa = Isa::kScalar;
    std::call_once(once, [] {
        isa = selectIsa();
        telemetry::processMetrics()
            .counter(std::string("gf.kernel.selected.") +
                     isaName(isa))
            .add();
    });
    return isa;
}

const Kernels &
activeKernels()
{
    static const Kernels &k = kernels(activeIsa());
    return k;
}

} // namespace detail
} // namespace gf
} // namespace chameleon
