#include "gf/matrix.hh"

#include "util/logging.hh"

namespace chameleon {
namespace gf {

Matrix::Matrix(std::size_t rows, std::size_t cols, Elem fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

std::size_t
Matrix::idx(std::size_t r, std::size_t c) const
{
    CHAMELEON_ASSERT(r < rows_ && c < cols_,
                     "matrix index (", r, ",", c, ") out of ",
                     rows_, "x", cols_);
    return r * cols_ + c;
}

Elem
Matrix::at(std::size_t r, std::size_t c) const
{
    return data_[idx(r, c)];
}

void
Matrix::set(std::size_t r, std::size_t c, Elem v)
{
    data_[idx(r, c)] = v;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n, 0);
    for (std::size_t i = 0; i < n; ++i)
        m.set(i, i, kOne);
    return m;
}

Matrix
Matrix::cauchy(std::size_t rows, std::size_t cols)
{
    CHAMELEON_ASSERT(rows + cols <= 256,
                     "Cauchy needs rows+cols <= 256, got ",
                     rows + cols);
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            Elem x = static_cast<Elem>(cols + i);
            Elem y = static_cast<Elem>(j);
            m.set(i, j, inv(add(x, y)));
        }
    }
    return m;
}

Matrix
Matrix::vandermonde(std::size_t rows, std::size_t cols)
{
    CHAMELEON_ASSERT(rows <= 255, "Vandermonde rows > 255");
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            m.set(i, j, pow(static_cast<Elem>(i + 1),
                            static_cast<unsigned>(j)));
    return m;
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    CHAMELEON_ASSERT(cols_ == other.rows_,
                     "multiply dims: ", rows_, "x", cols_, " * ",
                     other.rows_, "x", other.cols_);
    Matrix out(rows_, other.cols_, 0);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t l = 0; l < cols_; ++l) {
            Elem a = at(i, l);
            if (a == 0)
                continue;
            for (std::size_t j = 0; j < other.cols_; ++j) {
                Elem prod = mul(a, other.at(l, j));
                out.set(i, j, add(out.at(i, j), prod));
            }
        }
    }
    return out;
}

bool
Matrix::invert(Matrix &out) const
{
    CHAMELEON_ASSERT(rows_ == cols_, "inverting non-square matrix");
    const std::size_t n = rows_;
    Matrix work = *this;
    out = identity(n);

    for (std::size_t col = 0; col < n; ++col) {
        // Find a pivot in or below row `col`.
        std::size_t pivot = col;
        while (pivot < n && work.at(pivot, col) == 0)
            ++pivot;
        if (pivot == n)
            return false; // singular
        if (pivot != col) {
            for (std::size_t j = 0; j < n; ++j) {
                std::swap(work.data_[work.idx(col, j)],
                          work.data_[work.idx(pivot, j)]);
                std::swap(out.data_[out.idx(col, j)],
                          out.data_[out.idx(pivot, j)]);
            }
        }
        // Scale pivot row to 1.
        Elem piv_inv = inv(work.at(col, col));
        for (std::size_t j = 0; j < n; ++j) {
            work.set(col, j, mul(work.at(col, j), piv_inv));
            out.set(col, j, mul(out.at(col, j), piv_inv));
        }
        // Eliminate all other rows.
        for (std::size_t r = 0; r < n; ++r) {
            if (r == col)
                continue;
            Elem factor = work.at(r, col);
            if (factor == 0)
                continue;
            for (std::size_t j = 0; j < n; ++j) {
                work.set(r, j, add(work.at(r, j),
                                   mul(factor, work.at(col, j))));
                out.set(r, j, add(out.at(r, j),
                                  mul(factor, out.at(col, j))));
            }
        }
    }
    return true;
}

Matrix
Matrix::selectRows(const std::vector<std::size_t> &rows) const
{
    Matrix out(rows.size(), cols_);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        CHAMELEON_ASSERT(rows[i] < rows_, "row ", rows[i], " out of ",
                         rows_);
        for (std::size_t j = 0; j < cols_; ++j)
            out.set(i, j, at(rows[i], j));
    }
    return out;
}

} // namespace gf
} // namespace chameleon
