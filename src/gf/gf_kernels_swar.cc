/**
 * @file
 * Portable 64-bit SWAR kernels: eight field elements per register,
 * multiplied with the shift-and-conditional-reduce ladder (the
 * branch-free carryless multiply classic). No intrinsics, so this is
 * the fallback on any architecture; it still beats the byte loop by
 * avoiding per-byte branches and table loads.
 */

#include "gf/gf_kernels.hh"

#include <cstring>

#include "gf/gf_tables.hh"

namespace chameleon {
namespace gf {
namespace detail {

namespace {

constexpr uint64_t kHighBits = 0x8080808080808080ull;
constexpr uint64_t kLowBits = 0x7F7F7F7F7F7F7F7Full;

/** All-ones/all-zero lane masks, one per bit of the coefficient, so
 * the multiply ladder is branch-free. */
struct BitMasks
{
    uint64_t m[8];
};

inline BitMasks
makeBitMasks(uint8_t c)
{
    BitMasks b;
    for (int bit = 0; bit < 8; ++bit)
        b.m[bit] = (c & (1u << bit)) ? ~0ull : 0ull;
    return b;
}

/**
 * Multiplies all eight byte lanes of `v` by the coefficient encoded
 * in `b`: accumulate the lanes for each set bit, doubling v (times-x
 * modulo 0x11D, per lane) between bits. `(hi >> 7) * 0x1D` fans the
 * reduction constant into exactly the lanes whose top bit
 * overflowed.
 */
inline uint64_t
mulLanes(uint64_t v, const BitMasks &b)
{
    uint64_t r = 0;
    for (int bit = 0; bit < 8; ++bit) {
        r ^= v & b.m[bit];
        const uint64_t hi = v & kHighBits;
        v = ((v & kLowBits) << 1) ^ ((hi >> 7) * 0x1D);
    }
    return r;
}

inline uint64_t
loadWord(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline void
storeWord(uint8_t *p, uint64_t v)
{
    std::memcpy(p, &v, sizeof(v));
}

void
swarMulAdd(uint8_t *dst, const uint8_t *src, std::size_t n, uint8_t c)
{
    const BitMasks b = makeBitMasks(c);
    std::size_t i = 0;
    // Four words per iteration for instruction-level parallelism:
    // the four mul ladders are independent dependency chains.
    for (; i + 32 <= n; i += 32) {
        uint64_t r0 = mulLanes(loadWord(src + i), b);
        uint64_t r1 = mulLanes(loadWord(src + i + 8), b);
        uint64_t r2 = mulLanes(loadWord(src + i + 16), b);
        uint64_t r3 = mulLanes(loadWord(src + i + 24), b);
        storeWord(dst + i, loadWord(dst + i) ^ r0);
        storeWord(dst + i + 8, loadWord(dst + i + 8) ^ r1);
        storeWord(dst + i + 16, loadWord(dst + i + 16) ^ r2);
        storeWord(dst + i + 24, loadWord(dst + i + 24) ^ r3);
    }
    for (; i + 8 <= n; i += 8)
        storeWord(dst + i, loadWord(dst + i) ^
                               mulLanes(loadWord(src + i), b));
    if (i < n)
        scalarKernels().mulAdd(dst + i, src + i, n - i, c);
}

void
swarMul(uint8_t *dst, const uint8_t *src, std::size_t n, uint8_t c)
{
    const BitMasks b = makeBitMasks(c);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        storeWord(dst + i, mulLanes(loadWord(src + i), b));
    if (i < n)
        scalarKernels().mul(dst + i, src + i, n - i, c);
}

void
swarAdd(uint8_t *dst, const uint8_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        storeWord(dst + i, loadWord(dst + i) ^ loadWord(src + i));
    for (; i < n; ++i)
        dst[i] ^= src[i];
}

void
swarMulAddMulti(uint8_t *dst, const uint8_t *const *srcs,
                const uint8_t *coeffs, std::size_t nsrc, std::size_t n)
{
    blockedMulAddMulti(swarKernels(), dst, srcs, coeffs, nsrc, n);
}

} // namespace

const Kernels &
swarKernels()
{
    static const Kernels k = {"swar", swarMulAdd, swarMul, swarAdd,
                              swarMulAddMulti};
    return k;
}

} // namespace detail
} // namespace gf
} // namespace chameleon
