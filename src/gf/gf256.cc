#include "gf/gf256.hh"

#include <array>

#include "gf/gf_kernels.hh"
#include "gf/gf_tables.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace chameleon {
namespace gf {

namespace {

using detail::kTables;

/** Bytes pushed through each region entry point, for codec-throughput
 * accounting in exported metric snapshots. Handles resolve once, in
 * the process-wide registry: they outlive any per-run registry and
 * are shared by every concurrent run (Counter is atomic). */
struct RegionCounters
{
    telemetry::Counter &mulAdd;
    telemetry::Counter &mul;
    telemetry::Counter &add;
    telemetry::Counter &multi;

    RegionCounters()
        : mulAdd(telemetry::processMetrics()
                     .counter("gf.bytes.muladd")),
          mul(telemetry::processMetrics().counter("gf.bytes.mul")),
          add(telemetry::processMetrics().counter("gf.bytes.add")),
          multi(telemetry::processMetrics()
                    .counter("gf.bytes.muladd_multi"))
    {
    }
};

RegionCounters &
counters()
{
    static RegionCounters c;
    return c;
}

} // namespace

Elem
mul(Elem a, Elem b)
{
    if (a == 0 || b == 0)
        return 0;
    return kTables.exp[kTables.log[a] + kTables.log[b]];
}

Elem
inv(Elem a)
{
    CHAMELEON_ASSERT(a != 0, "inverse of zero");
    return kTables.exp[255 - kTables.log[a]];
}

Elem
div(Elem a, Elem b)
{
    CHAMELEON_ASSERT(b != 0, "division by zero");
    if (a == 0)
        return 0;
    unsigned diff = 255u + kTables.log[a] - kTables.log[b];
    return kTables.exp[diff % 255];
}

Elem
pow(Elem a, unsigned e)
{
    if (e == 0)
        return kOne;
    if (a == 0)
        return kZero;
    unsigned le = (static_cast<unsigned>(kTables.log[a]) * e) % 255;
    return kTables.exp[le];
}

void
mulAddRegion(std::span<Elem> dst, std::span<const Elem> src, Elem coeff)
{
    CHAMELEON_ASSERT(dst.size() == src.size(),
                     "region size mismatch: ", dst.size(), " vs ",
                     src.size());
    if (coeff == 0 || dst.empty())
        return;
    counters().mulAdd.add(static_cast<int64_t>(dst.size()));
    if (coeff == 1) {
        detail::activeKernels().add(dst.data(), src.data(),
                                    dst.size());
        return;
    }
    detail::activeKernels().mulAdd(dst.data(), src.data(), dst.size(),
                                   coeff);
}

void
mulRegion(std::span<Elem> dst, std::span<const Elem> src, Elem coeff)
{
    CHAMELEON_ASSERT(dst.size() == src.size(), "region size mismatch");
    if (coeff == 0) {
        for (auto &b : dst)
            b = 0;
        return;
    }
    if (dst.empty())
        return;
    if (coeff == 1) {
        if (dst.data() != src.data())
            std::copy(src.begin(), src.end(), dst.begin());
        return;
    }
    counters().mul.add(static_cast<int64_t>(dst.size()));
    detail::activeKernels().mul(dst.data(), src.data(), dst.size(),
                                coeff);
}

void
addRegion(std::span<Elem> dst, std::span<const Elem> src)
{
    CHAMELEON_ASSERT(dst.size() == src.size(), "region size mismatch");
    if (dst.empty())
        return;
    counters().add.add(static_cast<int64_t>(dst.size()));
    detail::activeKernels().add(dst.data(), src.data(), dst.size());
}

void
mulAddRegionMulti(std::span<Elem> dst, std::span<const Elem *const> srcs,
                  std::span<const Elem> coeffs)
{
    CHAMELEON_ASSERT(srcs.size() == coeffs.size(),
                     "source/coefficient count mismatch: ",
                     srcs.size(), " vs ", coeffs.size());
    if (dst.empty() || srcs.empty())
        return;

    // Strip zero coefficients so kernels see only real work; small
    // fixed batches keep the filtered arrays on the stack (repair
    // plans are capped well below this by the executor's mask width).
    constexpr std::size_t kBatch = 64;
    std::array<const Elem *, kBatch> fsrcs;
    std::array<Elem, kBatch> fcoeffs;
    std::size_t cnt = 0;
    for (std::size_t i = 0; i < srcs.size(); ++i) {
        if (coeffs[i] == 0)
            continue;
        CHAMELEON_ASSERT(srcs[i] != nullptr, "null source region");
        fsrcs[cnt] = srcs[i];
        fcoeffs[cnt] = coeffs[i];
        if (++cnt == kBatch) {
            detail::activeKernels().mulAddMulti(
                dst.data(), fsrcs.data(), fcoeffs.data(), cnt,
                dst.size());
            counters().multi.add(
                static_cast<int64_t>(cnt * dst.size()));
            cnt = 0;
        }
    }
    if (cnt > 0) {
        detail::activeKernels().mulAddMulti(dst.data(), fsrcs.data(),
                                            fcoeffs.data(), cnt,
                                            dst.size());
        counters().multi.add(static_cast<int64_t>(cnt * dst.size()));
    }
}

const char *
kernelName()
{
    return detail::activeKernels().name;
}

} // namespace gf
} // namespace chameleon
