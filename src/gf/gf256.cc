#include "gf/gf256.hh"

#include <array>

#include "util/logging.hh"

namespace chameleon {
namespace gf {

namespace {

/** Primitive polynomial x^8+x^4+x^3+x^2+1 -> 0x11D. */
constexpr unsigned kPoly = 0x11D;

struct Tables
{
    std::array<Elem, 256> log{};
    std::array<Elem, 512> exp{}; // doubled so mul never reduces mod 255

    constexpr Tables()
    {
        unsigned x = 1;
        for (unsigned i = 0; i < 255; ++i) {
            exp[i] = static_cast<Elem>(x);
            exp[i + 255] = static_cast<Elem>(x);
            log[x] = static_cast<Elem>(i);
            x <<= 1;
            if (x & 0x100)
                x ^= kPoly;
        }
        exp[510] = exp[255];
        exp[511] = exp[256];
        log[0] = 0; // unused sentinel; callers guard zero operands
    }
};

constexpr Tables kTables{};

} // namespace

Elem
mul(Elem a, Elem b)
{
    if (a == 0 || b == 0)
        return 0;
    return kTables.exp[kTables.log[a] + kTables.log[b]];
}

Elem
inv(Elem a)
{
    CHAMELEON_ASSERT(a != 0, "inverse of zero");
    return kTables.exp[255 - kTables.log[a]];
}

Elem
div(Elem a, Elem b)
{
    CHAMELEON_ASSERT(b != 0, "division by zero");
    if (a == 0)
        return 0;
    unsigned diff = 255u + kTables.log[a] - kTables.log[b];
    return kTables.exp[diff % 255];
}

Elem
pow(Elem a, unsigned e)
{
    if (e == 0)
        return kOne;
    if (a == 0)
        return kZero;
    unsigned le = (static_cast<unsigned>(kTables.log[a]) * e) % 255;
    return kTables.exp[le];
}

void
mulAddRegion(std::span<Elem> dst, std::span<const Elem> src, Elem coeff)
{
    CHAMELEON_ASSERT(dst.size() == src.size(),
                     "region size mismatch: ", dst.size(), " vs ",
                     src.size());
    if (coeff == 0)
        return;
    if (coeff == 1) {
        addRegion(dst, src);
        return;
    }
    const unsigned lc = kTables.log[coeff];
    const Elem *exp = kTables.exp.data();
    const Elem *log = kTables.log.data();
    Elem *d = dst.data();
    const Elem *s = src.data();
    for (std::size_t i = 0, n = dst.size(); i < n; ++i) {
        Elem v = s[i];
        if (v)
            d[i] ^= exp[lc + log[v]];
    }
}

void
mulRegion(std::span<Elem> dst, std::span<const Elem> src, Elem coeff)
{
    CHAMELEON_ASSERT(dst.size() == src.size(), "region size mismatch");
    if (coeff == 0) {
        for (auto &b : dst)
            b = 0;
        return;
    }
    if (coeff == 1) {
        if (dst.data() != src.data())
            std::copy(src.begin(), src.end(), dst.begin());
        return;
    }
    const unsigned lc = kTables.log[coeff];
    const Elem *exp = kTables.exp.data();
    const Elem *log = kTables.log.data();
    Elem *d = dst.data();
    const Elem *s = src.data();
    for (std::size_t i = 0, n = dst.size(); i < n; ++i) {
        Elem v = s[i];
        d[i] = v ? exp[lc + log[v]] : 0;
    }
}

void
addRegion(std::span<Elem> dst, std::span<const Elem> src)
{
    CHAMELEON_ASSERT(dst.size() == src.size(), "region size mismatch");
    Elem *d = dst.data();
    const Elem *s = src.data();
    for (std::size_t i = 0, n = dst.size(); i < n; ++i)
        d[i] ^= s[i];
}

} // namespace gf
} // namespace chameleon
