/**
 * @file
 * Dense matrices over GF(2^8) with the operations erasure codes need:
 * multiplication, Gaussian inversion, submatrix extraction, and the
 * Vandermonde / Cauchy generator constructions.
 */

#ifndef CHAMELEON_GF_MATRIX_HH_
#define CHAMELEON_GF_MATRIX_HH_

#include <cstddef>
#include <vector>

#include "gf/gf256.hh"

namespace chameleon {
namespace gf {

/** Row-major dense matrix over GF(2^8). */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, Elem fill = 0);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    Elem at(std::size_t r, std::size_t c) const;
    void set(std::size_t r, std::size_t c, Elem v);

    /** Identity matrix of order n. */
    static Matrix identity(std::size_t n);

    /**
     * Systematic-friendly Cauchy matrix of shape rows x cols, built
     * from x_i = i and y_j = rows + j over GF(2^8); requires
     * rows + cols <= 256. Any square submatrix is invertible, which is
     * what makes arbitrary k-of-(k+m) decoding possible.
     */
    static Matrix cauchy(std::size_t rows, std::size_t cols);

    /** Vandermonde matrix V[i][j] = (i+1)^j (rows x cols). */
    static Matrix vandermonde(std::size_t rows, std::size_t cols);

    /** this * other; dimensions must agree. */
    Matrix multiply(const Matrix &other) const;

    /**
     * Inverse via Gauss-Jordan elimination.
     * @retval true on success; false if the matrix is singular.
     */
    bool invert(Matrix &out) const;

    /** Rows selected (in order) from this matrix. */
    Matrix selectRows(const std::vector<std::size_t> &rows) const;

    /** True if equal element-wise. */
    bool operator==(const Matrix &other) const = default;

  private:
    std::size_t idx(std::size_t r, std::size_t c) const;

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<Elem> data_;
};

} // namespace gf
} // namespace chameleon

#endif // CHAMELEON_GF_MATRIX_HH_
