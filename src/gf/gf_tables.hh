/**
 * @file
 * Compile-time GF(2^8) log/antilog tables shared by the scalar entry
 * points (gf256.cc) and the region-kernel variants. Internal to
 * src/gf.
 */

#ifndef CHAMELEON_GF_GF_TABLES_HH_
#define CHAMELEON_GF_GF_TABLES_HH_

#include <array>
#include <cstdint>

namespace chameleon {
namespace gf {
namespace detail {

/** Primitive polynomial x^8+x^4+x^3+x^2+1 -> 0x11D. */
inline constexpr unsigned kPoly = 0x11D;

struct Tables
{
    std::array<uint8_t, 256> log{};
    std::array<uint8_t, 512> exp{}; // doubled so mul never reduces mod 255

    constexpr Tables()
    {
        unsigned x = 1;
        for (unsigned i = 0; i < 255; ++i) {
            exp[i] = static_cast<uint8_t>(x);
            exp[i + 255] = static_cast<uint8_t>(x);
            log[x] = static_cast<uint8_t>(i);
            x <<= 1;
            if (x & 0x100)
                x ^= kPoly;
        }
        exp[510] = exp[255];
        exp[511] = exp[256];
        log[0] = 0; // unused sentinel; callers guard zero operands
    }
};

inline constexpr Tables kTables{};

} // namespace detail
} // namespace gf
} // namespace chameleon

#endif // CHAMELEON_GF_GF_TABLES_HH_
