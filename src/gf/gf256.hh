/**
 * @file
 * GF(2^8) arithmetic, the algebra underlying every erasure code here.
 *
 * The field is constructed from the AES/Rijndael-compatible primitive
 * polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same polynomial
 * Jerasure/GF-complete default to for w = 8. Multiplication uses
 * log/antilog tables; bulk chunk operations go through mulRegion /
 * addRegion, which are what the codecs and relay combination use.
 */

#ifndef CHAMELEON_GF_GF256_HH_
#define CHAMELEON_GF_GF256_HH_

#include <cstddef>
#include <cstdint>
#include <span>

namespace chameleon {
namespace gf {

/** Field element. */
using Elem = uint8_t;

/** Additive identity. */
inline constexpr Elem kZero = 0;
/** Multiplicative identity. */
inline constexpr Elem kOne = 1;

/** Addition = subtraction = XOR in characteristic 2. */
inline Elem add(Elem a, Elem b) { return a ^ b; }
inline Elem sub(Elem a, Elem b) { return a ^ b; }

/** Field multiplication via log tables. */
Elem mul(Elem a, Elem b);

/** Multiplicative inverse; a must be nonzero. */
Elem inv(Elem a);

/** a / b with b nonzero. */
Elem div(Elem a, Elem b);

/** a raised to integer power e (e >= 0). */
Elem pow(Elem a, unsigned e);

/**
 * dst ^= coeff * src over byte regions (the GF "axpy").
 *
 * This is the single hot loop of encoding, decoding, and the relay
 * nodes' partial-decode combination (Equation (1) of the paper).
 * Regions must be the same length and may not alias unless equal.
 */
void mulAddRegion(std::span<Elem> dst, std::span<const Elem> src,
                  Elem coeff);

/** dst = coeff * src over byte regions. */
void mulRegion(std::span<Elem> dst, std::span<const Elem> src, Elem coeff);

/** dst ^= src over byte regions. */
void addRegion(std::span<Elem> dst, std::span<const Elem> src);

} // namespace gf
} // namespace chameleon

#endif // CHAMELEON_GF_GF256_HH_
