/**
 * @file
 * GF(2^8) arithmetic, the algebra underlying every erasure code here.
 *
 * The field is constructed from the AES/Rijndael-compatible primitive
 * polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same polynomial
 * Jerasure/GF-complete default to for w = 8. Single-element
 * multiplication uses log/antilog tables; bulk chunk operations go
 * through the region kernels (mulAddRegion / mulRegion / addRegion /
 * mulAddRegionMulti), which dispatch once at startup to the fastest
 * compiled-in variant the CPU supports (AVX2 > SSSE3 > 64-bit SWAR >
 * scalar reference; see gf_kernels.hh for the contract and
 * gf_dispatch.cc for the selection policy). All variants are
 * byte-identical; regions need no particular alignment, though
 * 64-byte-aligned buffers (ec::Buffer) avoid cacheline splits.
 */

#ifndef CHAMELEON_GF_GF256_HH_
#define CHAMELEON_GF_GF256_HH_

#include <cstddef>
#include <cstdint>
#include <span>

namespace chameleon {
namespace gf {

/** Field element. */
using Elem = uint8_t;

/** Additive identity. */
inline constexpr Elem kZero = 0;
/** Multiplicative identity. */
inline constexpr Elem kOne = 1;

/** Addition = subtraction = XOR in characteristic 2. */
inline Elem add(Elem a, Elem b) { return a ^ b; }
inline Elem sub(Elem a, Elem b) { return a ^ b; }

/** Field multiplication via log tables. */
Elem mul(Elem a, Elem b);

/** Multiplicative inverse; a must be nonzero. */
Elem inv(Elem a);

/** a / b with b nonzero. */
Elem div(Elem a, Elem b);

/** a raised to integer power e (e >= 0). */
Elem pow(Elem a, unsigned e);

/**
 * dst ^= coeff * src over byte regions (the GF "axpy").
 *
 * This is the single hot loop of encoding, decoding, and the relay
 * nodes' partial-decode combination (Equation (1) of the paper).
 * Regions must be the same length and may not alias unless equal.
 */
void mulAddRegion(std::span<Elem> dst, std::span<const Elem> src,
                  Elem coeff);

/** dst = coeff * src over byte regions. */
void mulRegion(std::span<Elem> dst, std::span<const Elem> src, Elem coeff);

/** dst ^= src over byte regions. */
void addRegion(std::span<Elem> dst, std::span<const Elem> src);

/**
 * Fused multi-source axpy: dst ^= sum_i coeffs[i] * srcs[i], the
 * whole right-hand side of Equation (1) in one cache-blocked pass.
 *
 * Encoding a parity chunk, decoding an erased chunk, and a relay's
 * partial-decode combination are all single calls here: the
 * destination is streamed through once while every source folds into
 * an in-register accumulator, instead of one full read-modify-write
 * pass per source. Zero coefficients are skipped. Every source must
 * be at least dst.size() bytes and must not overlap dst.
 */
void mulAddRegionMulti(std::span<Elem> dst,
                       std::span<const Elem *const> srcs,
                       std::span<const Elem> coeffs);

/**
 * Name of the region-kernel variant this process dispatches through
 * ("avx2", "ssse3", "swar", or "scalar"); fixed after first use.
 */
const char *kernelName();

} // namespace gf
} // namespace chameleon

#endif // CHAMELEON_GF_GF256_HH_
