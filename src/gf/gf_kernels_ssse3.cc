/**
 * @file
 * SSSE3 split-nibble kernels: one pshufb per nibble half turns the
 * 256-entry multiply table into two 16-entry in-register lookups
 * (GF-complete's SPLIT_TABLE(8,4), the scheme Jerasure and every
 * modern EC codec build on). 16 bytes per step, unaligned loads, and
 * scalar tails keep the alignment contract of gf_kernels.hh.
 *
 * This TU is compiled with -mssse3; nothing outside may call into it
 * without the runtime CPU check in gf_dispatch.cc.
 */

#include "gf/gf_kernels.hh"

#ifdef CHAMELEON_HAVE_SSSE3

#include <algorithm>
#include <tmmintrin.h>

namespace chameleon {
namespace gf {
namespace detail {

namespace {

/** Loaded-and-ready form of NibbleTables. */
struct VecTables
{
    __m128i lo;
    __m128i hi;
};

inline VecTables
loadTables(uint8_t c)
{
    const NibbleTables t = makeNibbleTables(c);
    return {_mm_load_si128(reinterpret_cast<const __m128i *>(t.lo)),
            _mm_load_si128(reinterpret_cast<const __m128i *>(t.hi))};
}

/** c * v for 16 lanes: lo[v & 0xF] ^ hi[v >> 4]. */
inline __m128i
mulVec(__m128i v, const VecTables &t, __m128i nibble_mask)
{
    const __m128i lo = _mm_shuffle_epi8(t.lo,
                                        _mm_and_si128(v, nibble_mask));
    const __m128i hi = _mm_shuffle_epi8(
        t.hi, _mm_and_si128(_mm_srli_epi64(v, 4), nibble_mask));
    return _mm_xor_si128(lo, hi);
}

void
ssse3MulAdd(uint8_t *dst, const uint8_t *src, std::size_t n, uint8_t c)
{
    const VecTables t = loadTables(c);
    const __m128i mask = _mm_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i s = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        __m128i d = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(dst + i));
        d = _mm_xor_si128(d, mulVec(s, t, mask));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i), d);
    }
    if (i < n)
        scalarKernels().mulAdd(dst + i, src + i, n - i, c);
}

void
ssse3Mul(uint8_t *dst, const uint8_t *src, std::size_t n, uint8_t c)
{
    const VecTables t = loadTables(c);
    const __m128i mask = _mm_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i s = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         mulVec(s, t, mask));
    }
    if (i < n)
        scalarKernels().mul(dst + i, src + i, n - i, c);
}

void
ssse3Add(uint8_t *dst, const uint8_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i s = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        const __m128i d = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(dst + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm_xor_si128(d, s));
    }
    if (i < n)
        scalarKernels().add(dst + i, src + i, n - i);
}

void
ssse3MulAddMulti(uint8_t *dst, const uint8_t *const *srcs,
                 const uint8_t *coeffs, std::size_t nsrc,
                 std::size_t n)
{
    // True fusion: the destination strip is loaded and stored once
    // while every source folds into the in-register accumulator, so
    // dst memory traffic is 1/nsrc of repeated single-source calls.
    constexpr std::size_t kMaxFused = 32;
    for (std::size_t base = 0; base < nsrc; base += kMaxFused) {
        const std::size_t cnt = std::min(kMaxFused, nsrc - base);
        VecTables tabs[kMaxFused];
        for (std::size_t j = 0; j < cnt; ++j)
            tabs[j] = loadTables(coeffs[base + j]);
        const __m128i mask = _mm_set1_epi8(0x0F);
        std::size_t i = 0;
        for (; i + 16 <= n; i += 16) {
            __m128i acc = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(dst + i));
            for (std::size_t j = 0; j < cnt; ++j) {
                const __m128i s = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(
                        srcs[base + j] + i));
                acc = _mm_xor_si128(acc, mulVec(s, tabs[j], mask));
            }
            _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                             acc);
        }
        for (std::size_t j = 0; i < n && j < cnt; ++j)
            scalarKernels().mulAdd(dst + i, srcs[base + j] + i, n - i,
                                   coeffs[base + j]);
    }
}

} // namespace

const Kernels &
ssse3Kernels()
{
    static const Kernels k = {"ssse3", ssse3MulAdd, ssse3Mul,
                              ssse3Add, ssse3MulAddMulti};
    return k;
}

} // namespace detail
} // namespace gf
} // namespace chameleon

#endif // CHAMELEON_HAVE_SSSE3
