/**
 * @file
 * AVX2 split-nibble kernels: the SSSE3 scheme widened to 32 lanes
 * with vpshufb (which shuffles within each 128-bit half — exactly
 * right here, since both halves want the same 16-entry table). The
 * main loops run 64 bytes per iteration (two accumulators) to cover
 * load latency; tails fall back to the scalar reference.
 *
 * This TU is compiled with -mavx2; nothing outside may call into it
 * without the runtime CPU check in gf_dispatch.cc.
 */

#include "gf/gf_kernels.hh"

#ifdef CHAMELEON_HAVE_AVX2

#include <algorithm>
#include <immintrin.h>

namespace chameleon {
namespace gf {
namespace detail {

namespace {

/** NibbleTables broadcast to both 128-bit halves. */
struct VecTables
{
    __m256i lo;
    __m256i hi;
};

inline VecTables
loadTables(uint8_t c)
{
    const NibbleTables t = makeNibbleTables(c);
    const __m128i lo = _mm_load_si128(
        reinterpret_cast<const __m128i *>(t.lo));
    const __m128i hi = _mm_load_si128(
        reinterpret_cast<const __m128i *>(t.hi));
    return {_mm256_broadcastsi128_si256(lo),
            _mm256_broadcastsi128_si256(hi)};
}

/** c * v for 32 lanes. */
inline __m256i
mulVec(__m256i v, const VecTables &t, __m256i nibble_mask)
{
    const __m256i lo = _mm256_shuffle_epi8(
        t.lo, _mm256_and_si256(v, nibble_mask));
    const __m256i hi = _mm256_shuffle_epi8(
        t.hi,
        _mm256_and_si256(_mm256_srli_epi64(v, 4), nibble_mask));
    return _mm256_xor_si256(lo, hi);
}

inline __m256i
loadu(const uint8_t *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

inline void
storeu(uint8_t *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

void
avx2MulAdd(uint8_t *dst, const uint8_t *src, std::size_t n, uint8_t c)
{
    const VecTables t = loadTables(c);
    const __m256i mask = _mm256_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        __m256i d0 = loadu(dst + i);
        __m256i d1 = loadu(dst + i + 32);
        d0 = _mm256_xor_si256(d0, mulVec(loadu(src + i), t, mask));
        d1 = _mm256_xor_si256(d1,
                              mulVec(loadu(src + i + 32), t, mask));
        storeu(dst + i, d0);
        storeu(dst + i + 32, d1);
    }
    for (; i + 32 <= n; i += 32) {
        storeu(dst + i,
               _mm256_xor_si256(loadu(dst + i),
                                mulVec(loadu(src + i), t, mask)));
    }
    if (i < n)
        scalarKernels().mulAdd(dst + i, src + i, n - i, c);
}

void
avx2Mul(uint8_t *dst, const uint8_t *src, std::size_t n, uint8_t c)
{
    const VecTables t = loadTables(c);
    const __m256i mask = _mm256_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32)
        storeu(dst + i, mulVec(loadu(src + i), t, mask));
    if (i < n)
        scalarKernels().mul(dst + i, src + i, n - i, c);
}

void
avx2Add(uint8_t *dst, const uint8_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        storeu(dst + i,
               _mm256_xor_si256(loadu(dst + i), loadu(src + i)));
        storeu(dst + i + 32, _mm256_xor_si256(loadu(dst + i + 32),
                                              loadu(src + i + 32)));
    }
    for (; i + 32 <= n; i += 32)
        storeu(dst + i,
               _mm256_xor_si256(loadu(dst + i), loadu(src + i)));
    if (i < n)
        scalarKernels().add(dst + i, src + i, n - i);
}

void
avx2MulAddMulti(uint8_t *dst, const uint8_t *const *srcs,
                const uint8_t *coeffs, std::size_t nsrc, std::size_t n)
{
    // True fusion: one dst load/store per 32-byte strip while every
    // source folds into the register accumulator (tables stay hot in
    // L1), instead of nsrc full read-modify-write passes over dst.
    constexpr std::size_t kMaxFused = 32;
    for (std::size_t base = 0; base < nsrc; base += kMaxFused) {
        const std::size_t cnt = std::min(kMaxFused, nsrc - base);
        VecTables tabs[kMaxFused];
        for (std::size_t j = 0; j < cnt; ++j)
            tabs[j] = loadTables(coeffs[base + j]);
        const __m256i mask = _mm256_set1_epi8(0x0F);
        std::size_t i = 0;
        for (; i + 32 <= n; i += 32) {
            __m256i acc = loadu(dst + i);
            for (std::size_t j = 0; j < cnt; ++j)
                acc = _mm256_xor_si256(
                    acc,
                    mulVec(loadu(srcs[base + j] + i), tabs[j], mask));
            storeu(dst + i, acc);
        }
        for (std::size_t j = 0; i < n && j < cnt; ++j)
            scalarKernels().mulAdd(dst + i, srcs[base + j] + i, n - i,
                                   coeffs[base + j]);
    }
}

} // namespace

const Kernels &
avx2Kernels()
{
    static const Kernels k = {"avx2", avx2MulAdd, avx2Mul, avx2Add,
                              avx2MulAddMulti};
    return k;
}

} // namespace detail
} // namespace gf
} // namespace chameleon

#endif // CHAMELEON_HAVE_AVX2
