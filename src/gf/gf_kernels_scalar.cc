/**
 * @file
 * Scalar byte-at-a-time reference kernels. Every other variant must
 * be byte-identical to these; the property suite enforces it.
 */

#include "gf/gf_kernels.hh"

#include <algorithm>

#include "gf/gf_tables.hh"

namespace chameleon {
namespace gf {
namespace detail {

NibbleTables
makeNibbleTables(uint8_t c)
{
    NibbleTables t;
    const unsigned lc = kTables.log[c];
    t.lo[0] = 0;
    t.hi[0] = 0;
    for (unsigned x = 1; x < 16; ++x) {
        t.lo[x] = kTables.exp[lc + kTables.log[x]];
        t.hi[x] = kTables.exp[lc + kTables.log[x << 4]];
    }
    return t;
}

void
blockedMulAddMulti(const Kernels &k, uint8_t *dst,
                   const uint8_t *const *srcs, const uint8_t *coeffs,
                   std::size_t nsrc, std::size_t n)
{
    // Apply every source to one destination block before advancing,
    // so dst is touched once per block, not once per source pass.
    constexpr std::size_t kBlock = 8192;
    for (std::size_t off = 0; off < n; off += kBlock) {
        const std::size_t len = std::min(kBlock, n - off);
        for (std::size_t j = 0; j < nsrc; ++j)
            k.mulAdd(dst + off, srcs[j] + off, len, coeffs[j]);
    }
}

namespace {

void
scalarMulAdd(uint8_t *dst, const uint8_t *src, std::size_t n, uint8_t c)
{
    const unsigned lc = kTables.log[c];
    const uint8_t *exp = kTables.exp.data();
    const uint8_t *log = kTables.log.data();
    for (std::size_t i = 0; i < n; ++i) {
        uint8_t v = src[i];
        if (v)
            dst[i] ^= exp[lc + log[v]];
    }
}

void
scalarMul(uint8_t *dst, const uint8_t *src, std::size_t n, uint8_t c)
{
    const unsigned lc = kTables.log[c];
    const uint8_t *exp = kTables.exp.data();
    const uint8_t *log = kTables.log.data();
    for (std::size_t i = 0; i < n; ++i) {
        uint8_t v = src[i];
        dst[i] = v ? exp[lc + log[v]] : 0;
    }
}

void
scalarAdd(uint8_t *dst, const uint8_t *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] ^= src[i];
}

void
scalarMulAddMulti(uint8_t *dst, const uint8_t *const *srcs,
                  const uint8_t *coeffs, std::size_t nsrc,
                  std::size_t n)
{
    blockedMulAddMulti(scalarKernels(), dst, srcs, coeffs, nsrc, n);
}

} // namespace

const Kernels &
scalarKernels()
{
    static const Kernels k = {"scalar", scalarMulAdd, scalarMul,
                              scalarAdd, scalarMulAddMulti};
    return k;
}

} // namespace detail
} // namespace gf
} // namespace chameleon
