/**
 * @file
 * Scenario: full-node repair under live foreground traffic — the
 * paper's headline use case. A 20-node cluster serves a YCSB-A-like
 * workload while one node dies; we repair it with conventional
 * repair and with ChameleonEC and compare repair throughput and the
 * foreground's P99 latency, using the same experiment harness the
 * bench binaries use.
 *
 * Run: ./build/examples/full_node_repair
 */

#include <cstdio>

#include "analysis/experiment.hh"

using namespace chameleon;
using namespace chameleon::analysis;

int
main()
{
    ExperimentConfig cfg;
    cfg.chunksToRepair = 40;
    cfg.exec.sliceSize = 2 * units::MiB;
    cfg.trace = traffic::ycsbA();
    cfg.seed = 1;

    std::printf("full-node repair of %d x 64 MiB chunks on a "
                "%d-node cluster, YCSB-A foreground\n\n",
                cfg.chunksToRepair, cfg.cluster.numNodes);

    for (auto algo : {Algorithm::kCr, Algorithm::kChameleon}) {
        auto result = runExperiment(algo, cfg);
        std::printf("%-12s: repaired %d chunks in %6.1f s "
                    "(%6.1f MB/s), foreground P99 %.1f ms\n",
                    algorithmName(algo).c_str(),
                    result.chunksRepaired, result.repairTime,
                    result.repairThroughput / 1e6,
                    result.p99LatencyMs);
        if (algo == Algorithm::kChameleon) {
            std::printf("              phases=%d retunes=%d "
                        "reorders=%d\n",
                        result.phases, result.retunes,
                        result.reorders);
        }
    }

    std::printf("\nChameleonEC dispatches repair tasks onto links "
                "the foreground leaves idle, so it repairs faster "
                "AND keeps request latency lower.\n");
    return 0;
}
