/**
 * @file
 * Scenario: choosing an erasure code — compares RS, LRC, and
 * Butterfly on repair traffic (the coding-theory view) and on
 * simulated repair throughput under foreground load (the systems
 * view), the trade-off Exp#9 of the paper explores. Also
 * demonstrates the plan layer directly: building CR/PPR/ECPipe and
 * ChameleonEC plans for the same failed chunk and evaluating them
 * byte-exactly.
 *
 * Run: ./build/examples/code_comparison
 */

#include <cstdio>

#include "analysis/experiment.hh"
#include "cluster/stripe_manager.hh"
#include "ec/factory.hh"
#include "repair/chameleon_planner.hh"
#include "repair/strategies.hh"

using namespace chameleon;

static void
trafficView()
{
    std::printf("repair traffic for one lost data chunk (chunk "
                "units):\n");
    Rng rng(5);
    for (auto code : {ec::makeRs(10, 4), ec::makeLrc(10, 2, 2),
                      ec::makeRs(2, 2), ec::makeButterfly()}) {
        std::vector<ChunkIndex> avail;
        for (ChunkIndex c = 1; c < code->n(); ++c)
            avail.push_back(c);
        auto spec = code->makeRepairSpec(0, avail, rng);
        double traffic = 0;
        for (const auto &read : spec.reads)
            traffic += read.fraction;
        std::printf("  %-14s reads %zu helpers, %.1f chunks of "
                    "traffic%s\n",
                    code->name().c_str(), spec.reads.size(), traffic,
                    spec.combinable ? "" : " (sub-chunk reads)");
    }
}

static void
planView()
{
    std::printf("\nrepair plans for the same failed chunk "
                "(RS(6,3)):\n");
    auto code = ec::makeRs(6, 3);
    cluster::StripeManager stripes(code, 12);
    Rng rng(9);
    stripes.createStripes(1, rng);

    // Real stripe data for byte-exact evaluation.
    std::vector<ec::Buffer> data(6, ec::Buffer(512));
    for (auto &chunk : data)
        for (auto &byte : chunk)
            byte = static_cast<uint8_t>(rng.below(256));
    auto parity = code->encode(data);
    std::vector<ec::Buffer> chunks = data;
    for (auto &p : parity)
        chunks.push_back(std::move(p));

    stripes.markLost(0, 2);
    for (auto topo : {repair::Topology::kStar, repair::Topology::kTree,
                      repair::Topology::kChain}) {
        auto plan = repair::makeBaselinePlan(stripes, {0, 2}, topo,
                                             {}, rng);
        auto repaired = repair::evaluatePlan(plan, chunks);
        std::printf("  %-7s depth %d, traffic %.0f chunks, "
                    "byte-exact: %s\n",
                    repair::topologyName(topo).c_str(), plan.depth(),
                    plan.trafficChunks(),
                    repaired == chunks[2] ? "yes" : "NO");
    }

    // A ChameleonEC plan shaped by (synthetic) bandwidth estimates:
    // node 11's downlink is rich, node 3's uplink is starved.
    auto state = repair::PlannerState::make(12, 64 * units::MiB);
    std::fill(state.bandUp.begin(), state.bandUp.end(), 300e6);
    std::fill(state.bandDown.begin(), state.bandDown.end(), 300e6);
    state.bandUp[3] = 10e6;
    repair::PlannerChunkInput input;
    input.stripe = 0;
    input.failed = 2;
    input.required = 6;
    input.combinable = true;
    auto avail = stripes.availableChunks(0);
    for (ChunkIndex c : avail) {
        input.helperChunks.push_back(c);
        input.helperNodes.push_back(stripes.location(0, c));
        input.fractions.push_back(1.0);
    }
    input.destCandidates = stripes.candidateDestinations(0);
    auto planned = repair::planChunk(state, input);
    if (planned) {
        // Fill coefficients and evaluate.
        std::vector<ChunkIndex> helpers;
        for (const auto &src : planned->plan.sources)
            helpers.push_back(src.chunk);
        auto spec = code->specFor(2, helpers);
        for (auto &src : planned->plan.sources)
            for (const auto &read : spec->reads)
                if (read.helper == src.chunk)
                    src.coeff = read.coeff;
        auto repaired = repair::evaluatePlan(planned->plan, chunks);
        std::printf("  Chameleon plan: depth %d, est. %.2f s, "
                    "byte-exact: %s\n",
                    planned->plan.depth(), planned->estimatedTime,
                    repaired == chunks[2] ? "yes" : "NO");
    }
}

static void
systemsView()
{
    std::printf("\nsimulated repair throughput under YCSB-A "
                "(ChameleonEC):\n");
    for (auto code : {ec::makeRs(10, 4), ec::makeLrc(10, 2, 2)}) {
        analysis::ExperimentConfig cfg;
        cfg.code = code;
        cfg.chunksToRepair = 20;
        cfg.exec.sliceSize = 2 * units::MiB;
        cfg.trace = traffic::ycsbA();
        auto r = runExperiment(analysis::Algorithm::kChameleon, cfg);
        std::printf("  %-14s %7.1f MB/s\n", code->name().c_str(),
                    r.repairThroughput / 1e6);
    }
    std::printf("LRC repairs faster at equal k: its local groups "
                "read half the helpers.\n");
}

int
main()
{
    trafficView();
    planView();
    systemsView();
    return 0;
}
