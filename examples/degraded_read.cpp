/**
 * @file
 * Scenario: degraded reads — a client requests a chunk that is
 * temporarily unavailable, and the repair sits on the read's
 * critical path (Exp#10 of the paper). We repair the same chunk
 * with each algorithm and report the degraded-read latency, plus
 * what happens when a straggler appears mid-read and ChameleonEC
 * re-tunes around it.
 *
 * Run: ./build/examples/degraded_read
 */

#include <cstdio>

#include "analysis/experiment.hh"
#include "ec/factory.hh"

using namespace chameleon;
using namespace chameleon::analysis;

int
main()
{
    std::printf("degraded read: single-chunk repair on the critical "
                "path (RS(6,3))\n\n");
    for (auto algo : {Algorithm::kCr, Algorithm::kPpr,
                      Algorithm::kEcpipe, Algorithm::kChameleon}) {
        ExperimentConfig cfg;
        cfg.code = ec::makeRs(6, 3);
        cfg.chunksToRepair = 1;
        cfg.exec.sliceSize = 1 * units::MiB;
        cfg.trace = traffic::ycsbA();
        cfg.chameleon.tPhase = 5.0; // react quickly for a hot read
        cfg.seed = 3;
        auto r = runExperiment(algo, cfg);
        std::printf("%-12s: chunk available after %6.2f s "
                    "(%6.1f MB/s degraded-read throughput)\n",
                    algorithmName(algo).c_str(), r.repairTime,
                    r.repairThroughput / 1e6);
    }

    std::printf("\nnow a burst of 8 degraded reads with a straggler "
                "appearing early (a participating node's links drop "
                "to 2%% for 30 s):\n");
    for (auto algo : {Algorithm::kEtrp, Algorithm::kChameleon}) {
        ExperimentConfig cfg;
        cfg.code = ec::makeRs(6, 3);
        cfg.chunksToRepair = 8;
        cfg.exec.sliceSize = 1 * units::MiB;
        cfg.trace = traffic::ycsbA();
        cfg.chameleon.tPhase = 5.0;
        cfg.chameleon.checkPeriod = 0.25;
        cfg.chameleon.stragglerSlack = 0.5;
        cfg.seed = 3;
        cfg.stragglers.push_back(
            StragglerEvent{0.3, kInvalidNode, 0.02, 30.0, true,
                           true});
        auto r = runExperiment(algo, cfg);
        // Reads served before the straggler clears (first 10 s).
        Bytes early = 0;
        for (std::size_t w = 0;
             w < r.throughputTimeline.size() &&
             static_cast<double>(w) * r.timelinePeriod < 10.0;
             ++w)
            early += r.throughputTimeline[w] * r.timelinePeriod;
        std::printf("%-12s: %2.0f of 8 reads served within 10 s; all "
                    "served after %6.2f s (retunes %d, reorders "
                    "%d)\n",
                    algorithmName(algo).c_str(),
                    early / cfg.exec.chunkSize, r.repairTime,
                    r.retunes, r.reorders);
    }
    std::printf("\nStraggler-aware re-scheduling re-tunes transfers "
                "around the slow node and lets unaffected reads "
                "finish first.\n");
    return 0;
}
