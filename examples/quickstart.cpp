/**
 * @file
 * Quickstart: encode a stripe with RS(4,2), lose a chunk, and repair
 * it on a simulated cluster with ChameleonEC — the smallest
 * end-to-end tour of the library (coding layer, cluster model,
 * scheduler), with byte-exact verification of the repaired data.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "cluster/cluster.hh"
#include "cluster/stripe_manager.hh"
#include "ec/factory.hh"
#include "repair/chameleon_scheduler.hh"
#include "repair/executor.hh"
#include "repair/monitor.hh"
#include "util/rng.hh"

using namespace chameleon;

int
main()
{
    // ---- 1. The coding layer: encode a stripe, break it, decode.
    auto code = ec::makeRs(4, 2);
    Rng rng(7);
    std::vector<ec::Buffer> data(4);
    for (auto &chunk : data) {
        chunk.resize(1024);
        for (auto &byte : chunk)
            byte = static_cast<uint8_t>(rng.below(256));
    }
    auto parity = code->encode(data);
    std::vector<ec::Buffer> stripe = data;
    for (auto &p : parity)
        stripe.push_back(std::move(p));
    std::printf("encoded a %s stripe: %d data + %d parity chunks\n",
                code->name().c_str(), code->k(), code->m());

    auto damaged = stripe;
    damaged[1].clear();
    damaged[4].clear();
    bool ok = code->decode(damaged);
    std::printf("decode after losing 2 chunks: %s, byte-exact: %s\n",
                ok ? "ok" : "FAILED",
                damaged == stripe ? "yes" : "NO");

    // ---- 2. The cluster simulation: a 10-node cluster, one failed
    //         node, ChameleonEC repairing every lost chunk.
    sim::Simulator sim;
    cluster::ClusterConfig ccfg;
    ccfg.numNodes = 10;
    ccfg.numClients = 1;
    ccfg.uplinkBw = 2.5 * units::Gbps;
    ccfg.downlinkBw = 2.5 * units::Gbps;
    cluster::Cluster cluster(sim, ccfg);

    cluster::StripeManager stripes(code, ccfg.numNodes);
    stripes.createStripes(12, rng);

    repair::RepairExecutor executor(cluster, repair::ExecutorConfig{});
    repair::BandwidthMonitor monitor(cluster);
    monitor.start();

    auto lost = stripes.failNode(0);
    std::printf("\nnode 0 failed: %zu chunks lost\n", lost.size());

    repair::ChameleonScheduler scheduler(stripes, executor, monitor,
                                         repair::ChameleonConfig{},
                                         rng.split());
    scheduler.start(lost);
    sim.run(600.0);

    if (!scheduler.finished()) {
        std::printf("repair did not finish (unexpected)\n");
        return 1;
    }
    std::printf("repaired %d chunks in %.1f s -> %.1f MB/s; "
                "phases=%d retunes=%d reorders=%d\n",
                scheduler.chunksRepaired(),
                scheduler.finishTime() - scheduler.startTime(),
                scheduler.throughput() / 1e6, scheduler.phasesRun(),
                scheduler.retunes(), scheduler.reorders());
    std::printf("remaining lost chunks: %zu\n",
                stripes.lostChunks().size());
    return 0;
}
