/**
 * @file
 * Command-line experiment runner: configure a cluster, a code, a
 * foreground trace (built-in profile or a trace file), pick repair
 * algorithms, and get the paper's metrics — without writing C++.
 *
 *   chameleon_sim --algo cr,chameleon --trace ycsb-a --chunks 60
 *   chameleon_sim --code lrc:10,2,2 --link-gbps 5 --disk-mbps 250
 *   chameleon_sim --trace-file my.trace --straggler 5:0.05:15
 *   chameleon_sim --help
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "ec/factory.hh"
#include "fault/fault.hh"
#include "telemetry/telemetry.hh"
#include "traffic/trace_file.hh"

using namespace chameleon;
using namespace chameleon::analysis;

namespace {

[[noreturn]] void
usage(int exit_code)
{
    std::printf(R"(chameleon_sim — run a ChameleonEC repair experiment

Options (defaults in brackets):
  --algo LIST        comma list of cr,ppr,ecpipe,rb-cr,rb-ppr,
                     rb-ecpipe,etrp,chameleon,chameleon-io
                     [cr,ppr,ecpipe,chameleon]
  --code SPEC        rs:K,M | lrc:K,L,M | butterfly  [rs:10,4]
  --trace NAME       ycsb-a|ibm|memcached|etc|none  [ycsb-a]
  --trace-file PATH  replay a '<op> <key> <bytes>' trace file
  --chunks N         chunks to repair  [60]
  --nodes N          storage nodes  [20]
  --clients N        foreground client instances  [4]
  --failed N         failed nodes  [1]
  --link-gbps X      sustained link bandwidth  [2.5]
  --racks N          racks (0 = flat topology)  [0]
  --oversub X        rack aggregation oversubscription  [1]
  --disk-mbps X      disk bandwidth  [500]
  --chunk-mib X      chunk size  [64]
  --slice-mib X      slice size  [2]
  --tphase X         ChameleonEC phase length (s)  [20]
  --straggler T:F:D  throttle a participating node to fraction F
                     for D seconds, T seconds after repair starts
                     (repeatable)
  --faults SPEC      inject faults mid-repair; SPEC is semicolon-
                     separated kind@T[:node=N][:factor=F][:dur=D]
                     with kind crash|slowdisk|linkdeg|blackout and
                     T seconds after repair starts, e.g.
                     "crash@5:dur=40;linkdeg@10:factor=0.2:dur=15"
  --chaos-rate X     sample a random fault schedule at X events/s
                     (split across kinds)  [0 = off]
  --chaos-seed N     chaos schedule seed  [derived from --seed]
  --chaos-horizon X  chaos window length (s)  [120]
  --seed N           RNG seed  [42]
  --trace-out PATH   write a Chrome/Perfetto trace (chrome://tracing,
                     https://ui.perfetto.dev) of every run
  --trace-jsonl PATH write the event stream as JSON lines
  --phase-csv PATH   write per-phase scheduler stats as CSV
  --metrics-out PATH write the final metrics snapshot as JSON
  --quiet            suppress the human-readable result table
  --help             this text
)");
    std::exit(exit_code);
}

std::vector<std::string>
splitList(const std::string &arg, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : arg) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

Algorithm
parseAlgorithm(const std::string &name)
{
    if (name == "cr")
        return Algorithm::kCr;
    if (name == "ppr")
        return Algorithm::kPpr;
    if (name == "ecpipe")
        return Algorithm::kEcpipe;
    if (name == "rb-cr")
        return Algorithm::kRbCr;
    if (name == "rb-ppr")
        return Algorithm::kRbPpr;
    if (name == "rb-ecpipe")
        return Algorithm::kRbEcpipe;
    if (name == "etrp")
        return Algorithm::kEtrp;
    if (name == "chameleon")
        return Algorithm::kChameleon;
    if (name == "chameleon-io")
        return Algorithm::kChameleonIo;
    std::fprintf(stderr, "unknown algorithm '%s'\n", name.c_str());
    usage(2);
}

std::shared_ptr<const ec::ErasureCode>
parseCode(const std::string &spec)
{
    if (spec == "butterfly")
        return ec::makeButterfly();
    auto colon = spec.find(':');
    if (colon == std::string::npos) {
        std::fprintf(stderr, "bad code spec '%s'\n", spec.c_str());
        usage(2);
    }
    auto family = spec.substr(0, colon);
    auto params = splitList(spec.substr(colon + 1), ',');
    if (family == "rs" && params.size() == 2)
        return ec::makeRs(std::stoi(params[0]), std::stoi(params[1]));
    if (family == "lrc" && params.size() == 3)
        return ec::makeLrc(std::stoi(params[0]), std::stoi(params[1]),
                           std::stoi(params[2]));
    std::fprintf(stderr, "bad code spec '%s'\n", spec.c_str());
    usage(2);
}

std::optional<traffic::TraceProfile>
parseTraceName(const std::string &name)
{
    if (name == "none")
        return std::nullopt;
    if (name == "ycsb-a")
        return traffic::ycsbA();
    if (name == "ibm")
        return traffic::ibmObjectStore();
    if (name == "memcached")
        return traffic::memcachedCluster37();
    if (name == "etc")
        return traffic::facebookEtc();
    std::fprintf(stderr, "unknown trace '%s'\n", name.c_str());
    usage(2);
}

/** Metric-name segment for one algorithm (CLI spelling). */
std::string
algoKey(Algorithm algo)
{
    switch (algo) {
      case Algorithm::kNone:
        return "none";
      case Algorithm::kCr:
        return "cr";
      case Algorithm::kPpr:
        return "ppr";
      case Algorithm::kEcpipe:
        return "ecpipe";
      case Algorithm::kRbCr:
        return "rb-cr";
      case Algorithm::kRbPpr:
        return "rb-ppr";
      case Algorithm::kRbEcpipe:
        return "rb-ecpipe";
      case Algorithm::kEtrp:
        return "etrp";
      case Algorithm::kChameleon:
        return "chameleon";
      case Algorithm::kChameleonIo:
        return "chameleon-io";
    }
    return "unknown";
}

/**
 * Publishes one experiment's results as `experiment.<algo>.*` gauges
 * so --metrics-out emits a machine-readable results table alongside
 * the internal instrumentation counters.
 */
void
publishResult(Algorithm algo, const ExperimentResult &r)
{
    auto &reg = telemetry::metrics();
    const std::string base = "experiment." + algoKey(algo) + ".";
    reg.gauge(base + "repair_mbps").set(r.repairThroughput / 1e6);
    reg.gauge(base + "repair_time_s").set(r.repairTime);
    reg.gauge(base + "chunks").set(r.chunksRepaired);
    reg.gauge(base + "p99_ms").set(r.p99LatencyMs);
    reg.gauge(base + "mean_ms").set(r.meanLatencyMs);
    reg.gauge(base + "phases").set(r.phases);
    reg.gauge(base + "retunes").set(r.retunes);
    reg.gauge(base + "reorders").set(r.reorders);
    reg.gauge(base + "unrecoverable").set(r.chunksUnrecoverable);
    reg.gauge(base + "crash_replans").set(r.crashReplans);
    reg.gauge(base + "faults_injected").set(r.faultsInjected);
}

StragglerEvent
parseStraggler(const std::string &spec)
{
    auto parts = splitList(spec, ':');
    if (parts.size() != 3) {
        std::fprintf(stderr,
                     "bad --straggler '%s' (want T:FRACTION:DURATION)\n",
                     spec.c_str());
        usage(2);
    }
    StragglerEvent ev;
    ev.at = std::stod(parts[0]);
    ev.node = kInvalidNode; // auto-pick a participating node
    ev.factor = std::stod(parts[1]);
    ev.duration = std::stod(parts[2]);
    return ev;
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentConfig cfg;
    cfg.chunksToRepair = 60;
    cfg.exec.sliceSize = 2 * units::MiB;
    cfg.trace = traffic::ycsbA();
    cfg.seed = 42;
    std::vector<Algorithm> algos = {Algorithm::kCr, Algorithm::kPpr,
                                    Algorithm::kEcpipe,
                                    Algorithm::kChameleon};
    bool quiet = false;

    auto need_value = [&](int i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", argv[i]);
            usage(2);
        }
        return argv[i + 1];
    };

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag == "--help" || flag == "-h") {
            usage(0);
        } else if (flag == "--algo") {
            algos.clear();
            for (const auto &name : splitList(need_value(i), ','))
                algos.push_back(parseAlgorithm(name));
            ++i;
        } else if (flag == "--code") {
            cfg.code = parseCode(need_value(i));
            ++i;
        } else if (flag == "--trace") {
            cfg.trace = parseTraceName(need_value(i));
            ++i;
        } else if (flag == "--trace-file") {
            cfg.trace = traffic::profileFromRecords(
                need_value(i),
                traffic::loadTraceFile(need_value(i)));
            ++i;
        } else if (flag == "--chunks") {
            cfg.chunksToRepair = std::stoi(need_value(i));
            ++i;
        } else if (flag == "--nodes") {
            cfg.cluster.numNodes = std::stoi(need_value(i));
            ++i;
        } else if (flag == "--clients") {
            cfg.cluster.numClients = std::stoi(need_value(i));
            ++i;
        } else if (flag == "--failed") {
            cfg.failedNodes = std::stoi(need_value(i));
            ++i;
        } else if (flag == "--racks") {
            cfg.cluster.racks = std::stoi(need_value(i));
            ++i;
        } else if (flag == "--oversub") {
            cfg.cluster.rackOversubscription =
                std::stod(need_value(i));
            ++i;
        } else if (flag == "--link-gbps") {
            cfg.cluster.uplinkBw = std::stod(need_value(i)) *
                                   units::Gbps;
            cfg.cluster.downlinkBw = cfg.cluster.uplinkBw;
            ++i;
        } else if (flag == "--disk-mbps") {
            cfg.cluster.diskBw = std::stod(need_value(i)) *
                                 units::MBps;
            ++i;
        } else if (flag == "--chunk-mib") {
            cfg.exec.chunkSize = std::stod(need_value(i)) *
                                 units::MiB;
            ++i;
        } else if (flag == "--slice-mib") {
            cfg.exec.sliceSize = std::stod(need_value(i)) *
                                 units::MiB;
            ++i;
        } else if (flag == "--tphase") {
            cfg.chameleon.tPhase = std::stod(need_value(i));
            ++i;
        } else if (flag == "--straggler") {
            cfg.stragglers.push_back(parseStraggler(need_value(i)));
            ++i;
        } else if (flag == "--faults") {
            cfg.faults = fault::FaultSchedule::parse(need_value(i));
            ++i;
        } else if (flag == "--chaos-rate") {
            cfg.chaosRate = std::stod(need_value(i));
            ++i;
        } else if (flag == "--chaos-seed") {
            cfg.chaosSeed = std::stoull(need_value(i));
            ++i;
        } else if (flag == "--chaos-horizon") {
            cfg.chaosHorizon = std::stod(need_value(i));
            ++i;
        } else if (flag == "--seed") {
            cfg.seed = std::stoull(need_value(i));
            ++i;
        } else if (flag == "--trace-out") {
            telemetry::setTraceOutput(need_value(i));
            ++i;
        } else if (flag == "--trace-jsonl") {
            telemetry::setJsonlOutput(need_value(i));
            ++i;
        } else if (flag == "--phase-csv") {
            telemetry::setPhaseCsvOutput(need_value(i));
            ++i;
        } else if (flag == "--metrics-out") {
            telemetry::setMetricsOutput(need_value(i));
            ++i;
        } else if (flag == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
            usage(2);
        }
    }

    if (!quiet) {
        std::printf("cluster: %d nodes, %d clients, %.2f Gb/s links, "
                    "%.0f MB/s disks; code %s; %d chunks x %.0f MiB; "
                    "trace %s; seed %llu\n\n",
                    cfg.cluster.numNodes, cfg.cluster.numClients,
                    cfg.cluster.uplinkBw * 8 / 1e9,
                    cfg.cluster.diskBw / 1e6, cfg.code->name().c_str(),
                    cfg.chunksToRepair,
                    cfg.exec.chunkSize / units::MiB,
                    cfg.trace ? cfg.trace->name.c_str() : "none",
                    static_cast<unsigned long long>(cfg.seed));
    }

    for (auto algo : algos) {
        auto r = runExperiment(algo, cfg);
        publishResult(algo, r);
        if (quiet)
            continue;
        // Print the row from the published snapshot so the table and
        // --metrics-out can never disagree.
        auto snap = telemetry::metrics().snapshot();
        const std::string base = "experiment." + algoKey(algo) + ".";
        auto value = [&](const char *leaf) {
            const auto *s = snap.find(base + leaf);
            return s ? s->value : 0.0;
        };
        std::printf("%-14s repair %7.1f MB/s in %7.1f s",
                    algorithmName(algo).c_str(), value("repair_mbps"),
                    value("repair_time_s"));
        if (cfg.trace)
            std::printf("   P99 %8.1f ms", value("p99_ms"));
        if (r.phases)
            std::printf("   phases %.0f retunes %.0f reorders %.0f",
                        value("phases"), value("retunes"),
                        value("reorders"));
        if (r.faultsInjected)
            std::printf("   faults %.0f replans %.0f unrecoverable %.0f",
                        value("faults_injected"),
                        value("crash_replans"),
                        value("unrecoverable"));
        std::printf("\n");
    }
    telemetry::flush();
    return 0;
}
