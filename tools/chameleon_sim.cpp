/**
 * @file
 * Command-line experiment runner: configure a cluster, a code, a
 * foreground trace (built-in profile or a trace file), pick repair
 * algorithms, and get the paper's metrics — without writing C++.
 *
 * The configuration lives in a runtime::ScenarioSpec, so a run is
 * round-trippable: --dump-scenario prints the effective scenario as
 * JSON, --scenario loads one back (later flags override it), and
 * --jobs N executes the algorithm list concurrently through
 * runtime::SweepRunner with output identical to --jobs 1.
 *
 *   chameleon_sim --algo cr,chameleon --trace ycsb-a --chunks 60
 *   chameleon_sim --code lrc:10,2,2 --link-gbps 5 --disk-mbps 250
 *   chameleon_sim --trace-file my.trace --straggler 5:0.05:15
 *   chameleon_sim --scenario examples/scenarios/sweep.json --jobs 4
 *   chameleon_sim --dump-scenario > my_scenario.json
 *   chameleon_sim --help
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ec/factory.hh"
#include "fault/fault.hh"
#include "runtime/runtime.hh"
#include "runtime/scenario.hh"
#include "runtime/sweep.hh"
#include "telemetry/telemetry.hh"
#include "traffic/trace_file.hh"

using namespace chameleon;
using namespace chameleon::runtime;

namespace {

[[noreturn]] void
usage(int exit_code)
{
    std::printf(R"(chameleon_sim — run a ChameleonEC repair experiment

Options (defaults in brackets):
  --algo LIST        comma list of cr,ppr,ecpipe,rb-cr,rb-ppr,
                     rb-ecpipe,etrp,chameleon,chameleon-io
                     [cr,ppr,ecpipe,chameleon]
  --scenario PATH    load a scenario JSON file (see --dump-scenario);
                     flags after --scenario override its fields
  --dump-scenario    print the effective scenario as JSON and exit
  --jobs N           run the algorithm list on N sweep workers
                     (0 = hardware concurrency); output is identical
                     to --jobs 1  [1]
  --code SPEC        rs(K,M) | lrc(K,L,M) | lrc(K,L,G,M) | butterfly
                     | rep(N), or the legacy "family:args" spelling;
                     see --list-codes  [rs:10,4]
  --list-codes       print the registered code families (grammar and
                     capability summary) and exit
  --trace NAME       ycsb-a|ibm|memcached|etc|none  [ycsb-a]
  --trace-file PATH  replay a '<op> <key> <bytes>' trace file
  --chunks N         chunks to repair  [60]
  --nodes N          storage nodes  [20]
  --clients N        foreground client instances  [4]
  --failed N         failed nodes  [1]
  --link-gbps X      sustained link bandwidth  [2.5]
  --racks N          racks (0 = flat topology)  [0]
  --oversub X        rack aggregation oversubscription  [1]
  --disk-mbps X      disk bandwidth  [500]
  --chunk-mib X      chunk size  [64]
  --slice-mib X      slice size  [2]
  --slices N         split each chunk into exactly N pipeline slices
                     (overrides --slice-mib; 0 = derive from it)  [0]
  --topology KEY     execution-topology override for the session
                     algorithms (cr/ppr/ecpipe/rb-*): auto|star|
                     chain|ppr|mlf:F, executed slice-pipelined
                     through the repair DAG  [auto]
  --tphase X         ChameleonEC phase length (s)  [20]
  --straggler T:F:D  throttle a participating node to fraction F
                     for D seconds, T seconds after repair starts
                     (repeatable)
  --faults SPEC      inject faults mid-repair; SPEC is semicolon-
                     separated kind@T[:node=N][:factor=F][:dur=D]
                     with kind crash|slowdisk|linkdeg|blackout|bitrot
                     and T seconds after repair starts, e.g.
                     "crash@5:dur=40;linkdeg@10:factor=0.2:dur=15"
  --chaos-rate X     sample a random fault schedule at X events/s
                     (split across kinds)  [0 = off]
  --chaos-seed N     chaos schedule seed  [derived from --seed]
  --chaos-horizon X  chaos window length (s)  [120]
  --bitrot-rate X    silent bit-rot corruptions at X events/s within
                     the chaos window  [0 = off]
  --degraded         route repairs through the hedged degraded-read
                     manager (session algorithms only)
  --no-hedge         degraded baseline: single attempt, no hedging
  --hedge-mult X     hedge timer = X * estimated completion  [1.5]
  --hedge-delay X    minimum hedge timer (s)  [0.5]
  --max-hedges N     hedged attempts per read  [1]
  --scrub            enable background integrity scrubbing (and the
                     executor verify-on-read/after-decode hooks)
  --scrub-mbps X     scrub read bandwidth  [64]
  --scrub-adaptive   back scrubbing off on foreground-busy disks
  --no-verify-reads  disable verify-on-read of repair helpers
  --no-verify-decode disable verify-after-decode of repaired chunks
  --seed N           RNG seed  [42]
  --trace-out PATH   write a Chrome/Perfetto trace (chrome://tracing,
                     https://ui.perfetto.dev) of every run
  --trace-jsonl PATH write the event stream as JSON lines
  --phase-csv PATH   write per-phase scheduler stats as CSV
  --metrics-out PATH write the final metrics snapshot as JSON
  --quiet            suppress the human-readable result table
  --help             this text
)");
    std::exit(exit_code);
}

std::vector<std::string>
splitList(const std::string &arg, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : arg) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

bool
isChameleonFamily(Algorithm a)
{
    return a == Algorithm::kEtrp || a == Algorithm::kChameleon ||
           a == Algorithm::kChameleonIo;
}

Algorithm
parseAlgorithm(const std::string &name)
{
    auto algo = algorithmFromKey(name);
    if (!algo) {
        std::fprintf(stderr, "unknown algorithm '%s'\n", name.c_str());
        usage(2);
    }
    return *algo;
}

StragglerEvent
parseStraggler(const std::string &spec)
{
    auto parts = splitList(spec, ':');
    if (parts.size() != 3) {
        std::fprintf(stderr,
                     "bad --straggler '%s' (want T:FRACTION:DURATION)\n",
                     spec.c_str());
        usage(2);
    }
    StragglerEvent ev;
    ev.at = std::stod(parts[0]);
    ev.node = kInvalidNode; // auto-pick a participating node
    ev.factor = std::stod(parts[1]);
    ev.duration = std::stod(parts[2]);
    return ev;
}

/**
 * Publishes one experiment's results as `experiment.<algo>.*` gauges
 * so --metrics-out emits a machine-readable results table alongside
 * the internal instrumentation counters.
 */
void
publishResult(Algorithm algo, const ExperimentResult &r)
{
    auto &reg = telemetry::metrics();
    const std::string base = "experiment." + algorithmKey(algo) + ".";
    reg.gauge(base + "repair_mbps").set(r.repairThroughput / 1e6);
    reg.gauge(base + "repair_time_s").set(r.repairTime);
    reg.gauge(base + "chunks").set(r.chunksRepaired);
    reg.gauge(base + "p99_ms").set(r.p99LatencyMs);
    reg.gauge(base + "mean_ms").set(r.meanLatencyMs);
    reg.gauge(base + "phases").set(r.phases);
    reg.gauge(base + "retunes").set(r.retunes);
    reg.gauge(base + "reorders").set(r.reorders);
    reg.gauge(base + "unrecoverable").set(r.chunksUnrecoverable);
    reg.gauge(base + "crash_replans").set(r.crashReplans);
    reg.gauge(base + "faults_injected").set(r.faultsInjected);
    reg.gauge(base + "corruptions_injected")
        .set(r.corruptionsInjected);
    reg.gauge(base + "corruptions_detected")
        .set(r.corruptionsDetected);
    reg.gauge(base + "corruptions_repaired")
        .set(r.corruptionsRepaired);
    reg.gauge(base + "scrub_epochs").set(r.scrubEpochs);
    reg.gauge(base + "scrub_mb").set(r.scrubBytes / 1e6);
    reg.gauge(base + "hedges").set(r.hedgesIssued);
    reg.gauge(base + "hedge_wins").set(r.hedgeWins);
    reg.gauge(base + "degraded_p99_ms")
        .set(r.degradedLatency.p99 * 1e3);
}

/** Prints one result row from the published metrics snapshot so the
 * table and --metrics-out can never disagree. */
void
printResultRow(Algorithm algo, const ExperimentConfig &cfg,
               const ExperimentResult &r)
{
    auto snap = telemetry::metrics().snapshot();
    const std::string base = "experiment." + algorithmKey(algo) + ".";
    auto value = [&](const char *leaf) {
        const auto *s = snap.find(base + leaf);
        return s ? s->value : 0.0;
    };
    std::printf("%-14s repair %7.1f MB/s in %7.1f s",
                algorithmName(algo).c_str(), value("repair_mbps"),
                value("repair_time_s"));
    if (cfg.trace)
        std::printf("   P99 %8.1f ms", value("p99_ms"));
    if (r.phases)
        std::printf("   phases %.0f retunes %.0f reorders %.0f",
                    value("phases"), value("retunes"),
                    value("reorders"));
    if (r.faultsInjected)
        std::printf("   faults %.0f replans %.0f unrecoverable %.0f",
                    value("faults_injected"), value("crash_replans"),
                    value("unrecoverable"));
    if (cfg.scrub.enabled)
        std::printf("   rot %.0f/%.0f detected, %.0f re-repaired",
                    value("corruptions_detected"),
                    value("corruptions_injected"),
                    value("corruptions_repaired"));
    if (cfg.degraded.enabled)
        std::printf("   degraded P99 %8.1f ms, hedges %.0f won %.0f",
                    value("degraded_p99_ms"), value("hedges"),
                    value("hedge_wins"));
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ScenarioSpec spec;
    spec.chunksToRepair = 60;
    spec.exec.sliceSize = 2 * units::MiB;
    spec.trace = "ycsb-a";
    spec.seed = 42;
    std::vector<Algorithm> algos = {Algorithm::kCr, Algorithm::kPpr,
                                    Algorithm::kEcpipe,
                                    Algorithm::kChameleon};
    bool algos_from_flag = false;
    bool quiet = false;
    bool dump_scenario = false;
    int jobs = 1;
    // --trace-file profiles have no scenario-JSON spelling; the
    // override is applied after the spec materializes.
    std::optional<traffic::TraceProfile> trace_file_override;

    auto need_value = [&](int i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", argv[i]);
            usage(2);
        }
        return argv[i + 1];
    };

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag == "--help" || flag == "-h") {
            usage(0);
        } else if (flag == "--algo") {
            algos.clear();
            for (const auto &name : splitList(need_value(i), ','))
                algos.push_back(parseAlgorithm(name));
            algos_from_flag = true;
            ++i;
        } else if (flag == "--scenario") {
            std::ifstream in(need_value(i));
            if (!in) {
                std::fprintf(stderr, "cannot read scenario '%s'\n",
                             need_value(i));
                return 2;
            }
            std::ostringstream text;
            text << in.rdbuf();
            std::string err;
            auto loaded = ScenarioSpec::fromJson(text.str(), &err);
            if (!loaded) {
                std::fprintf(stderr, "bad scenario '%s': %s\n",
                             need_value(i), err.c_str());
                return 2;
            }
            spec = *loaded;
            if (!algos_from_flag)
                algos = {spec.algorithm};
            ++i;
        } else if (flag == "--dump-scenario") {
            dump_scenario = true;
        } else if (flag == "--jobs") {
            jobs = std::stoi(need_value(i));
            ++i;
        } else if (flag == "--list-codes") {
            for (const auto &fam : ec::registeredCodecs())
                std::printf("%-12s %-28s %s\n", fam.key.c_str(),
                            fam.grammar.c_str(),
                            fam.summary.c_str());
            return 0;
        } else if (flag == "--code") {
            spec.code = need_value(i);
            std::string err;
            if (!tryParseCode(spec.code, &err)) {
                std::fprintf(stderr, "%s\n", err.c_str());
                usage(2);
            }
            ++i;
        } else if (flag == "--trace") {
            spec.trace = need_value(i);
            std::optional<traffic::TraceProfile> probe;
            std::string err;
            if (!tryResolveTrace(spec.trace, &probe, &err)) {
                std::fprintf(stderr, "%s\n", err.c_str());
                usage(2);
            }
            ++i;
        } else if (flag == "--trace-file") {
            trace_file_override = traffic::profileFromRecords(
                need_value(i),
                traffic::loadTraceFile(need_value(i)));
            ++i;
        } else if (flag == "--chunks") {
            spec.chunksToRepair = std::stoi(need_value(i));
            ++i;
        } else if (flag == "--nodes") {
            spec.cluster.numNodes = std::stoi(need_value(i));
            ++i;
        } else if (flag == "--clients") {
            spec.cluster.numClients = std::stoi(need_value(i));
            ++i;
        } else if (flag == "--failed") {
            spec.failedNodes = std::stoi(need_value(i));
            ++i;
        } else if (flag == "--racks") {
            spec.cluster.racks = std::stoi(need_value(i));
            ++i;
        } else if (flag == "--oversub") {
            spec.cluster.rackOversubscription =
                std::stod(need_value(i));
            ++i;
        } else if (flag == "--link-gbps") {
            spec.cluster.uplinkBw = std::stod(need_value(i)) *
                                    units::Gbps;
            spec.cluster.downlinkBw = spec.cluster.uplinkBw;
            ++i;
        } else if (flag == "--disk-mbps") {
            spec.cluster.diskBw = std::stod(need_value(i)) *
                                  units::MBps;
            ++i;
        } else if (flag == "--chunk-mib") {
            spec.exec.chunkSize = std::stod(need_value(i)) *
                                  units::MiB;
            ++i;
        } else if (flag == "--slice-mib") {
            spec.exec.sliceSize = std::stod(need_value(i)) *
                                  units::MiB;
            ++i;
        } else if (flag == "--slices") {
            spec.exec.slices = std::stoi(need_value(i));
            ++i;
        } else if (flag == "--topology") {
            std::string err;
            auto topo = dag::topologyFromKey(need_value(i), &err);
            if (!topo) {
                std::fprintf(stderr, "%s\n", err.c_str());
                usage(2);
            }
            spec.topology = *topo;
            ++i;
        } else if (flag == "--tphase") {
            spec.chameleon.tPhase = std::stod(need_value(i));
            ++i;
        } else if (flag == "--straggler") {
            spec.stragglers.push_back(parseStraggler(need_value(i)));
            ++i;
        } else if (flag == "--faults") {
            spec.faults = fault::FaultSchedule::parse(need_value(i));
            ++i;
        } else if (flag == "--chaos-rate") {
            spec.chaosRate = std::stod(need_value(i));
            ++i;
        } else if (flag == "--chaos-seed") {
            spec.chaosSeed = std::stoull(need_value(i));
            ++i;
        } else if (flag == "--chaos-horizon") {
            spec.chaosHorizon = std::stod(need_value(i));
            ++i;
        } else if (flag == "--bitrot-rate") {
            spec.bitrotRate = std::stod(need_value(i));
            ++i;
        } else if (flag == "--degraded") {
            spec.degraded.enabled = true;
        } else if (flag == "--no-hedge") {
            spec.degraded.hedge = false;
        } else if (flag == "--hedge-mult") {
            spec.degraded.hedgeMultiplier = std::stod(need_value(i));
            ++i;
        } else if (flag == "--hedge-delay") {
            spec.degraded.hedgeMinDelay = std::stod(need_value(i));
            ++i;
        } else if (flag == "--max-hedges") {
            spec.degraded.maxHedges = std::stoi(need_value(i));
            ++i;
        } else if (flag == "--scrub") {
            spec.scrub.enabled = true;
        } else if (flag == "--scrub-mbps") {
            spec.scrub.rate = std::stod(need_value(i)) * units::MiB;
            ++i;
        } else if (flag == "--scrub-adaptive") {
            spec.scrub.adaptive = true;
        } else if (flag == "--no-verify-reads") {
            spec.scrub.verifyReads = false;
        } else if (flag == "--no-verify-decode") {
            spec.scrub.verifyDecode = false;
        } else if (flag == "--seed") {
            spec.seed = std::stoull(need_value(i));
            ++i;
        } else if (flag == "--trace-out") {
            telemetry::setTraceOutput(need_value(i));
            ++i;
        } else if (flag == "--trace-jsonl") {
            telemetry::setJsonlOutput(need_value(i));
            ++i;
        } else if (flag == "--phase-csv") {
            telemetry::setPhaseCsvOutput(need_value(i));
            ++i;
        } else if (flag == "--metrics-out") {
            telemetry::setMetricsOutput(need_value(i));
            ++i;
        } else if (flag == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
            usage(2);
        }
    }

    if (dump_scenario) {
        if (algos.size() == 1)
            spec.algorithm = algos[0];
        std::fputs(spec.toJson().c_str(), stdout);
        return 0;
    }

    if (spec.topology.kind != dag::RepairTopology::kAuto) {
        for (auto algo : algos) {
            if (algo == Algorithm::kNone || isChameleonFamily(algo)) {
                std::fprintf(stderr,
                             "--topology %s does not apply to '%s' "
                             "(session algorithms only)\n",
                             dag::topologyKey(spec.topology).c_str(),
                             algorithmKey(algo).c_str());
                usage(2);
            }
        }
    }

    ExperimentConfig cfg = spec.toConfig();
    if (trace_file_override)
        cfg.trace = trace_file_override;

    if (!quiet) {
        std::printf("cluster: %d nodes, %d clients, %.2f Gb/s links, "
                    "%.0f MB/s disks; code %s; %d chunks x %.0f MiB; "
                    "trace %s; seed %llu\n\n",
                    cfg.cluster.numNodes, cfg.cluster.numClients,
                    cfg.cluster.uplinkBw * 8 / 1e9,
                    cfg.cluster.diskBw / 1e6, cfg.code->name().c_str(),
                    cfg.chunksToRepair,
                    cfg.exec.chunkSize / units::MiB,
                    cfg.trace ? cfg.trace->name.c_str() : "none",
                    static_cast<unsigned long long>(cfg.seed));
    }

    if (jobs == 1) {
        // Single-worker path: run in the process-default telemetry
        // context, exactly as before the sweep executor existed.
        for (auto algo : algos) {
            auto r = runExperiment(algo, cfg);
            publishResult(algo, r);
            if (!quiet)
                printResultRow(algo, cfg, r);
        }
    } else {
        // Sweep path: isolated per-run telemetry contexts, merged
        // into the process context in cell order, so the table and
        // every --*-out file match the --jobs 1 run byte for byte.
        std::vector<SweepCell> cells;
        for (auto algo : algos) {
            SweepCell cell;
            cell.label = algorithmName(algo);
            cell.algorithm = algo;
            cell.config = cfg;
            cell.seedIndex = 0; // one workload, many algorithms
            cells.push_back(std::move(cell));
        }
        SweepOptions so;
        so.jobs = jobs;
        SweepRunner runner(so);
        runner.run(cells, [&](std::size_t, const SweepCell &cell,
                              const ExperimentResult &r) {
            publishResult(cell.algorithm, r);
            if (!quiet)
                printResultRow(cell.algorithm, cfg, r);
        });
    }
    telemetry::flush();
    return 0;
}
