/**
 * @file
 * Offline summarizer for traces written by `chameleon-sim
 * --trace-out`. Reads the Chrome-trace JSON back in and prints, per
 * run (trace process): phase spans and durations, scheduler decision
 * counts (dispatches, stragglers, re-tunes, re-orders), flow counts
 * per track, and the most-contended links by transferred repair
 * bytes.
 *
 *   trace_inspect t.json
 *   trace_inspect --top 10 t.json
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.hh"

using chameleon::telemetry::JsonValue;
using chameleon::telemetry::parseJson;

namespace {

[[noreturn]] void
usage(int exit_code)
{
    std::printf(R"(trace_inspect — summarize a chameleon-sim trace

usage: trace_inspect [--top N] TRACE.json

Prints, for every run in the trace: phase spans with durations,
scheduler decisions (dispatches, stragglers, re-tunes, re-orders),
flow counts per track, and the N most-contended links by repair
bytes (default 5).
)");
    std::exit(exit_code);
}

/** One scheduler phase reconstructed from its begin/end span. */
struct PhaseSpan
{
    double start = 0.0; // seconds
    double end = -1.0;  // -1 while open
    double pending = 0.0;
    double active = 0.0;
};

/** Everything we aggregate for one trace process (= one run). */
struct RunSummary
{
    std::string name;
    std::vector<PhaseSpan> phases;
    int64_t dispatches = 0;
    int64_t stragglers = 0;
    int64_t retunes = 0;
    int64_t reorders = 0;
    int64_t chunks = 0;
    /** Flow count per thread (track) name. */
    std::map<std::string, int64_t> flowsPerTrack;
    /** Bytes attributed to each link the flows crossed. */
    std::map<std::string, double> linkBytes;
    /** Same, but repair-track flows only. */
    std::map<std::string, double> linkRepairBytes;
    double lastTs = 0.0; // seconds
};

void
splitPath(const std::string &path, std::vector<std::string> &out)
{
    out.clear();
    std::string cur;
    for (char c : path) {
        if (c == '|') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t top = 5;
    std::string file;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            usage(0);
        } else if (std::strcmp(argv[i], "--top") == 0) {
            if (i + 1 >= argc)
                usage(2);
            top = static_cast<std::size_t>(std::atoi(argv[++i]));
        } else if (file.empty()) {
            file = argv[i];
        } else {
            usage(2);
        }
    }
    if (file.empty())
        usage(2);

    std::ifstream in(file);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", file.c_str());
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto doc = parseJson(buf.str());
    if (!doc || !doc->isObject()) {
        std::fprintf(stderr, "'%s' is not a JSON object\n",
                     file.c_str());
        return 1;
    }
    const JsonValue *events = doc->find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr, "'%s' has no traceEvents array\n",
                     file.c_str());
        return 1;
    }

    std::map<double, RunSummary> runs; // keyed by pid
    /** (pid, tid) -> track name, from thread_name metadata. */
    std::map<std::pair<double, double>, std::string> trackNames;

    std::vector<std::string> path_parts;
    for (const JsonValue &ev : events->array) {
        if (!ev.isObject())
            continue;
        const std::string ph = ev.stringOr("ph", "");
        const std::string name = ev.stringOr("name", "");
        const double pid = ev.numberOr("pid", 0.0);
        const double tid = ev.numberOr("tid", 0.0);
        const JsonValue *args = ev.find("args");

        if (ph == "M") {
            if (name == "process_name" && args) {
                runs[pid].name = args->stringOr("name", "");
            } else if (name == "thread_name" && args) {
                trackNames[{pid, tid}] = args->stringOr("name", "");
            }
            continue;
        }

        RunSummary &run = runs[pid];
        const double ts = ev.numberOr("ts", 0.0) / 1e6;
        const double dur = ev.numberOr("dur", 0.0) / 1e6;
        run.lastTs = std::max(run.lastTs, ts + dur);

        if (ph == "B" && name == "phase") {
            PhaseSpan span;
            span.start = ts;
            if (args) {
                span.pending = args->numberOr("pending", 0.0);
                span.active = args->numberOr("active", 0.0);
            }
            run.phases.push_back(span);
        } else if (ph == "E") {
            // The scheduler track only nests phase spans, so an end
            // event closes the most recent open phase.
            for (auto it = run.phases.rbegin();
                 it != run.phases.rend(); ++it) {
                if (it->end < 0.0) {
                    it->end = ts;
                    break;
                }
            }
        } else if (ph == "i" || ph == "I") {
            if (name == "dispatch")
                ++run.dispatches;
            else if (name == "straggler")
                ++run.stragglers;
            else if (name == "retune")
                ++run.retunes;
            else if (name == "reorder")
                ++run.reorders;
        } else if (ph == "X" && name == "flow") {
            auto tn = trackNames.find({pid, tid});
            const std::string track =
                tn != trackNames.end()
                    ? tn->second
                    : "track-" +
                          std::to_string(static_cast<int>(tid));
            ++run.flowsPerTrack[track];
            if (args) {
                const double bytes = args->numberOr("bytes", 0.0);
                splitPath(args->stringOr("path", ""), path_parts);
                for (const auto &link : path_parts) {
                    run.linkBytes[link] += bytes;
                    if (track == "repair-flows")
                        run.linkRepairBytes[link] += bytes;
                }
            }
        } else if (ph == "X" && name == "chunk") {
            ++run.chunks;
        }
    }

    if (runs.empty()) {
        std::printf("no runs found in %s\n", file.c_str());
        return 0;
    }

    for (const auto &[pid, run] : runs) {
        std::printf("== run %s (pid %.0f, %.1f s of activity)\n",
                    run.name.empty() ? "?" : run.name.c_str(), pid,
                    run.lastTs);

        if (!run.phases.empty()) {
            std::printf("  phases: %zu\n", run.phases.size());
            for (std::size_t p = 0; p < run.phases.size(); ++p) {
                const PhaseSpan &span = run.phases[p];
                const double end =
                    span.end < 0.0 ? run.lastTs : span.end;
                std::printf("    #%-3zu %8.1f s -> %8.1f s  "
                            "(%6.1f s)%s  pending %.0f active %.0f\n",
                            p, span.start, end, end - span.start,
                            span.end < 0.0 ? " (open)" : "",
                            span.pending, span.active);
            }
        }
        std::printf("  decisions: %lld dispatches, %lld stragglers, "
                    "%lld retunes, %lld reorders\n",
                    static_cast<long long>(run.dispatches),
                    static_cast<long long>(run.stragglers),
                    static_cast<long long>(run.retunes),
                    static_cast<long long>(run.reorders));
        if (run.chunks) {
            std::printf("  chunks repaired: %lld\n",
                        static_cast<long long>(run.chunks));
        }
        for (const auto &[track, count] : run.flowsPerTrack) {
            std::printf("  flows on %-12s %lld\n", track.c_str(),
                        static_cast<long long>(count));
        }

        auto print_top = [&](const char *title,
                             const std::map<std::string, double> &m) {
            if (m.empty())
                return;
            std::vector<std::pair<std::string, double>> links(
                m.begin(), m.end());
            std::sort(links.begin(), links.end(),
                      [](const auto &a, const auto &b) {
                          return a.second > b.second;
                      });
            std::printf("  %s\n", title);
            for (std::size_t i = 0;
                 i < std::min(top, links.size()); ++i) {
                std::printf("    %-16s %10.1f MB\n",
                            links[i].first.c_str(),
                            links[i].second / 1e6);
            }
        };
        print_top("top links by traced bytes:", run.linkBytes);
        print_top("top links by repair bytes:", run.linkRepairBytes);
        std::printf("\n");
    }
    return 0;
}
