/**
 * @file
 * Exp#15: slice pipelining vs topology tunability.
 *
 * Group A (no foreground): the ECPipe chain executed through the DAG
 * path at S = 1 (whole-chunk store-and-forward) and S = 64 slices,
 * against the analytic pipelined-chain bound
 *   T_lb(S) = (k + S - 1)/S * C/B
 * with k = 4 hops, C = 64 MiB, B = 2.5 Gb/s. The sliced chain must
 * land within 15% of the bound; the unsliced chain shows the O(k)
 * store-and-forward cost pipelining removes.
 *
 * Group B (fluctuating YCSB-A foreground): Chameleon's tunable
 * dispatch against fixed pipelined topologies (chain S = 64,
 * MLF fan-in 3 S = 64) and the CR star — the paper's argument that
 * pipelining fixes the dependency-path cost but not the
 * interference-aware placement that tunability buys.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"
#include "ec/factory.hh"

namespace {

using namespace chameleon;
using namespace chameleon::bench;
using runtime::Algorithm;

/** Group A geometry: rs:4,2 -> k = 4 chain hops. */
constexpr int kChainHops = 4;

double
chainBound(int slices)
{
    const double chunk = 64 * units::MiB;
    const double bw = 2.5 * units::Gbps;
    return (kChainHops + slices - 1) /
           static_cast<double>(slices) * chunk / bw;
}

/** Group A cell: idle cluster, serial chunks, no relay overhead, so
 * measured repair time is comparable to the analytic bound. */
runtime::SweepCell
chainCell(const std::string &label, int slices, int chunks,
          uint64_t seed)
{
    auto cell = makeCell(label, Algorithm::kEcpipe);
    cell.config.trace.reset();
    cell.config.code = ec::makeRs(4, 2);
    cell.config.chunksToRepair = chunks;
    cell.config.session.maxInFlight = 1;
    cell.config.exec.slices = slices;
    cell.config.exec.relayOverheadPerMiB = 0.0;
    cell.config.topology = *dag::topologyFromKey("chain");
    cell.config.seed = seed;
    cell.deriveSeed = false;
    return cell;
}

/** Group B cell: default fluctuating-workload config plus a fixed
 * pipelined topology (empty key = the algorithm's native path). */
runtime::SweepCell
tunabilityCell(Algorithm algo, const std::string &topo, int chunks)
{
    std::string label = runtime::algorithmName(algo);
    if (!topo.empty())
        label += " " + topo + " S=64";
    auto cell = makeCell(label, algo, 0);
    cell.config.chunksToRepair = chunks;
    if (!topo.empty()) {
        cell.config.topology = *dag::topologyFromKey(topo);
        cell.config.exec.slices = 64;
    }
    return cell;
}

int
run(int chunks)
{
    std::vector<runtime::SweepCell> cells;
    cells.push_back(chainCell("chain S=1", 1, chunks, 7));
    cells.push_back(chainCell("chain S=64", 64, chunks, 7));
    cells.push_back(tunabilityCell(Algorithm::kCr, "", chunks));
    cells.push_back(
        tunabilityCell(Algorithm::kEcpipe, "chain", chunks));
    cells.push_back(
        tunabilityCell(Algorithm::kEcpipe, "mlf:3", chunks));
    cells.push_back(tunabilityCell(Algorithm::kChameleon, "", chunks));

    ShapeChecker chk;
    double per_chunk_s1 = 0, per_chunk_s64 = 0;
    double cham = 0, best_fixed = 0;
    runCells(cells, [&](std::size_t i, const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        if (i == 0)
            std::printf("Group A: idle cluster, rs:4,2 chain, "
                        "serial chunks (bound (k+S-1)/S * C/B):\n");
        if (i == 2)
            std::printf("\nGroup B: YCSB-A foreground, rs:10,4, "
                        "fixed pipelines vs tunable dispatch:\n");
        double per_chunk =
            r.chunksRepaired ? r.repairTime / r.chunksRepaired : 0.0;
        if (i < 2) {
            int slices = cell.config.exec.slices;
            std::printf("  %-16s %7.3f s/chunk  (bound %7.3f s)\n",
                        cell.label.c_str(), per_chunk,
                        chainBound(slices));
        } else {
            std::printf("  %-22s %7.1f MB/s   P99 %6.1f ms\n",
                        cell.label.c_str(), r.repairThroughput / 1e6,
                        r.p99LatencyMs);
        }
        chk.check(cell.label + " chunks accounted for",
                  r.chunksRepaired + r.chunksUnrecoverable >=
                      cell.config.chunksToRepair);
        if (i == 0)
            per_chunk_s1 = per_chunk;
        if (i == 1)
            per_chunk_s64 = per_chunk;
        if (cell.algorithm == Algorithm::kChameleon)
            cham = r.repairThroughput;
        else if (i >= 2)
            best_fixed = std::max(best_fixed, r.repairThroughput);
    });

    std::printf("\nAnalytic-bound checks:\n");
    chk.check("S=64 chain within 15% of one-slice-per-hop bound",
              per_chunk_s64 <= 1.15 * chainBound(64));
    chk.check("S=64 chain not below the bound",
              per_chunk_s64 >= chainBound(64) * (1 - 1e-9));
    chk.check("S=1 chain pays the O(k) store-and-forward cost",
              per_chunk_s1 >= 0.9 * chainBound(1));
    std::printf("\nShape check: pipelining closes the chain's "
                "dependency-path cost on an idle cluster; under "
                "fluctuating traffic the tunable dispatcher still "
                "matters (Chameleon %.1f vs best fixed pipeline "
                "%.1f MB/s).\n",
                cham / 1e6, best_fixed / 1e6);
    return chk.exitCode();
}

} // namespace

int
main(int argc, char **argv)
{
    init(argc, argv);
    if (opts().smoke) {
        std::printf("exp15_pipelining --smoke: %d chunks, seed 7, "
                    "jobs %d\n",
                    kSmokeChunks, opts().jobs);
        return run(kSmokeChunks);
    }
    printHeader("Exp#15: slice pipelining vs tunability",
                "chain at S=1 vs S=64 against the analytic bound; "
                "fixed pipelines vs Chameleon under YCSB-A");
    return run(benchChunks(24));
}
