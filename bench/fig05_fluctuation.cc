/**
 * @file
 * Figure 5 (root cause R1): fluctuation of the bandwidth occupied by
 * foreground traffic across 15-second windows. The paper reports an
 * average swing of ~1.1 Gb/s per window and peaks up to 3.6 Gb/s.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"
#include "traffic/foreground_driver.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;

    init(argc, argv);
    bool smoke = opts().smoke;
    if (!smoke)
        printHeader("Figure 5: foreground bandwidth fluctuation",
                    "YCSB-A, 4 clients, 15 s windows, no repair");

    sim::Simulator sim;
    cluster::ClusterConfig ccfg;
    ccfg.uplinkBw = ccfg.downlinkBw = 2.5 * units::Gbps;
    ccfg.usageWindow = smoke ? 5.0 : 15.0;
    cluster::Cluster cluster(sim, ccfg);
    traffic::ForegroundDriver driver(cluster, traffic::ycsbA(),
                                     Rng(42), 0);
    driver.start();
    sim.run(smoke ? 30.0 : 240.0);
    driver.stop();
    sim.run(sim.now() + 50.0);

    auto report = [&](const char *name, bool uplink) {
        Summary fluct, mean;
        for (NodeId n = 0; n < cluster.numNodes(); ++n) {
            auto id = uplink ? cluster.uplink(n) : cluster.downlink(n);
            const auto &usage =
                cluster.network().usage(id, sim::FlowTag::kForeground);
            if (usage.windowCount() == 0)
                continue;
            fluct.add(usage.fluctuation() * 8 / 1e9);
            mean.add(usage.meanRate() * 8 / 1e9);
        }
        std::printf("%s: per-window fluctuation avg %.2f Gb/s "
                    "(min %.2f, max %.2f); mean occupied %.2f Gb/s\n",
                    name, fluct.mean, fluct.min, fluct.max, mean.mean);
    };
    if (smoke) {
        // Foreground load must exist and actually fluctuate.
        ShapeChecker chk;
        Summary fluct, mean;
        for (NodeId n = 0; n < cluster.numNodes(); ++n) {
            const auto &usage = cluster.network().usage(
                cluster.uplink(n), sim::FlowTag::kForeground);
            if (usage.windowCount() == 0)
                continue;
            fluct.add(usage.fluctuation());
            mean.add(usage.meanRate());
        }
        chk.positive("mean occupied uplink bandwidth Gb/s",
                     mean.mean * 8 / 1e9);
        chk.positive("per-window fluctuation Gb/s",
                     fluct.mean * 8 / 1e9);
        return chk.exitCode();
    }

    report("uplinks  ", true);
    report("downlinks", false);

    std::printf("\nShape check: occupied bandwidth keeps changing "
                "across windows (paper: ~1.1 Gb/s average swing, up "
                "to 3.6 Gb/s on 10 Gb/s NICs; here scaled to the "
                "2.5 Gb/s sustained links).\n");
    return 0;
}
