/**
 * @file
 * Exp#16: scrubbing vs detection latency vs foreground interference.
 * Silent bit rot is only surfaced by reading the data back, and
 * scrub reads are one more background stream contending with
 * foreground I/O — exactly the tension ChameleonEC's tunable
 * dispatch manages for repair traffic. Rows sweep the scrub-read
 * rate under a fixed bit-rot schedule and measure both sides of the
 * trade: injection-to-detection latency (faster scrubbing finds rot
 * sooner) and foreground P99 during the run (faster scrubbing steals
 * more disk bandwidth). Each rate runs twice — static token-bucket
 * scrubbing vs Chameleon-style adaptive scrubbing that charges busy
 * disks more (backing off where foreground is hot, spending the
 * budget where reads are cheap).
 *
 * The run loop holds every cell open until the scrub subsystem is
 * quiescent, so each row's corruption accounting must close: every
 * injected corruption detected, every detection re-repaired.
 * Results go to BENCH_runtime.json (micro_sweep/micro_dag style).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "util/format.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // A short, hot bit-rot window with fast scrubbing: every
        // corruption must be injected, detected, and re-repaired
        // before the run is allowed to end.
        return runSmoke(
            "exp16_scrub", {Algorithm::kCr, Algorithm::kChameleon},
            [](runtime::ExperimentConfig &cfg) {
                cfg.bitrotRate = 1.0;
                cfg.chaosSeed = 99;
                cfg.chaosHorizon = 6.0;
                cfg.scrub.enabled = true;
                cfg.scrub.rate = 512.0 * units::MiB;
                cfg.scrub.adaptive = true;
            },
            [](ShapeChecker &chk, Algorithm,
               const runtime::ExperimentResult &r) {
                chk.positive("corruptions injected",
                             r.corruptionsInjected);
                chk.equals("corruptions detected",
                           r.corruptionsDetected,
                           r.corruptionsInjected);
                chk.equals("corruptions re-repaired",
                           r.corruptionsRepaired,
                           r.corruptionsDetected);
                chk.positive("scrub bytes", r.scrubBytes);
            });
    }

    // One group per scrub rate, static vs adaptive within a group.
    // The bit-rot schedule is pinned by chaosSeed, so every cell
    // sees the same corruptions at the same instants.
    const std::vector<double> ratesMiB = {32.0, 128.0, 512.0};
    std::vector<runtime::SweepCell> cells;
    for (std::size_t g = 0; g < ratesMiB.size(); ++g) {
        const double rate = ratesMiB[g];
        for (int adaptive = 0; adaptive <= 1; ++adaptive) {
            char label[48];
            std::snprintf(label, sizeof(label),
                          "scrub %3.0f MiB/s %s", rate,
                          adaptive ? "adaptive" : "static");
            cells.push_back(makeCell(
                label, Algorithm::kChameleon, static_cast<int>(g),
                [rate, adaptive](runtime::ExperimentConfig &cfg) {
                    cfg.bitrotRate = 0.4;
                    cfg.chaosSeed = 4242;
                    cfg.chaosHorizon = 25.0;
                    cfg.scrub.enabled = true;
                    cfg.scrub.rate = rate * units::MiB;
                    cfg.scrub.adaptive = adaptive != 0;
                }));
        }
    }

    printHeader("Exp#16: scrub rate vs detection latency vs "
                "foreground interference",
                "RS(10,4), YCSB-A; fixed bit-rot schedule, scrub "
                "rate swept, static vs Chameleon-adaptive scrubbing");

    struct Row
    {
        std::string label;
        bool adaptive = false;
        double rateMiB = 0.0;
        runtime::ExperimentResult r;
    };
    std::vector<Row> rows;
    runCells(cells, [&](std::size_t i, const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        const double rate = ratesMiB[i / 2];
        std::printf("  %-24s rot %2d/%2d detected  latency mean "
                    "%6.1f s max %6.1f s  fg P99 %6.1f ms  scrub "
                    "%6.0f MiB\n",
                    cell.label.c_str(), r.corruptionsDetected,
                    r.corruptionsInjected, r.meanDetectionLatency,
                    r.maxDetectionLatency, r.p99LatencyMs,
                    r.scrubBytes / units::MiB);
        rows.push_back({cell.label, i % 2 == 1, rate, r});
    });

    ShapeChecker chk;
    for (const Row &row : rows) {
        chk.positive(row.label + " corruptions injected",
                     row.r.corruptionsInjected);
        chk.equals(row.label + " detected == injected",
                   row.r.corruptionsDetected,
                   row.r.corruptionsInjected);
        chk.equals(row.label + " re-repaired == detected",
                   row.r.corruptionsRepaired,
                   row.r.corruptionsDetected);
    }
    // The core trade: the fastest scrub rate must detect sooner
    // than the slowest (both static rows, same rot schedule).
    if (rows.size() >= 2) {
        const Row &slow = rows.front();
        const Row &fast = rows[rows.size() - 2];
        chk.check("detection latency shrinks with scrub rate (" +
                      std::to_string(fast.r.meanDetectionLatency) +
                      " s @ " + std::to_string(fast.rateMiB) +
                      " MiB/s vs " +
                      std::to_string(slow.r.meanDetectionLatency) +
                      " s @ " + std::to_string(slow.rateMiB) +
                      " MiB/s)",
                  fast.r.meanDetectionLatency <=
                      slow.r.meanDetectionLatency);
    }

    std::FILE *json = std::fopen("BENCH_runtime.json", "w");
    if (json) {
        std::fprintf(
            json,
            "{\n"
            "  \"bench\": \"exp16_scrub\",\n"
            "  \"description\": \"scrub rate vs bit-rot detection "
            "latency vs foreground interference, static vs "
            "Chameleon-adaptive scrubbing\",\n"
            "  \"results\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &row = rows[i];
            std::fprintf(
                json,
                "    {\"scrub_mib_s\": %s, \"adaptive\": %s,\n"
                "     \"corruptions_injected\": %d,\n"
                "     \"corruptions_detected\": %d,\n"
                "     \"corruptions_repaired\": %d,\n"
                "     \"mean_detection_latency_s\": %s,\n"
                "     \"max_detection_latency_s\": %s,\n"
                "     \"foreground_p99_ms\": %s,\n"
                "     \"scrub_mib\": %s,\n"
                "     \"repair_throughput_mb_s\": %s}%s\n",
                formatDouble(row.rateMiB).c_str(),
                row.adaptive ? "true" : "false",
                row.r.corruptionsInjected, row.r.corruptionsDetected,
                row.r.corruptionsRepaired,
                formatDouble(row.r.meanDetectionLatency).c_str(),
                formatDouble(row.r.maxDetectionLatency).c_str(),
                formatDouble(row.r.p99LatencyMs).c_str(),
                formatDouble(row.r.scrubBytes / units::MiB).c_str(),
                formatDouble(row.r.repairThroughput / 1e6).c_str(),
                i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(json,
                     "  ],\n"
                     "  \"consistent\": %s\n"
                     "}\n",
                     chk.failed() ? "false" : "true");
        std::fclose(json);
        std::printf("wrote BENCH_runtime.json\n");
    } else {
        std::fprintf(stderr, "cannot write BENCH_runtime.json\n");
        return 1;
    }

    std::printf("\nShape checks: every injected corruption is "
                "detected and re-repaired (the run stays open until "
                "the scrub subsystem is quiescent); higher scrub "
                "rates detect sooner at the cost of foreground "
                "interference, and adaptive scrubbing trims that "
                "interference at comparable latency.\n");
    return chk.exitCode();
}
