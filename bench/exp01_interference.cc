/**
 * @file
 * Exp#1 / Figure 12: repair throughput and foreground P99 latency
 * across the four traces (YCSB-A, IBM Object Store, Memcached,
 * Facebook ETC) for CR, PPR, ECPipe, and ChameleonEC. The paper
 * reports ChameleonEC improving repair throughput by 23.5% / 31.4% /
 * 65.6% on average over CR / PPR / ECPipe and shortening P99 by
 * 18.2% / 9.1% / 17.6%.
 */

#include <cstdio>
#include <map>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // One trace, all four algorithms, plus a latency sanity
        // check (foreground requests must complete during repair).
        return runSmoke(
            "exp01_interference", comparisonAlgorithms(), {},
            [](ShapeChecker &chk, Algorithm,
               const runtime::ExperimentResult &r) {
                chk.positive("P99 latency ms", r.p99LatencyMs);
            });
    }

    // One comparison group per trace; cells of a group share a
    // seedIndex so every algorithm sees the same workload.
    auto profiles = traffic::allProfiles();
    std::vector<runtime::SweepCell> cells;
    for (std::size_t t = 0; t < profiles.size(); ++t) {
        for (auto algo : comparisonAlgorithms()) {
            cells.push_back(makeCell(
                profiles[t].name + " / " +
                    runtime::algorithmName(algo),
                algo, static_cast<int>(t),
                [&](runtime::ExperimentConfig &cfg) {
                    // The flagship table runs closer to the paper's
                    // scale so phase-level effects fully develop.
                    cfg.chunksToRepair = 150;
                    cfg.trace = profiles[t];
                }));
        }
    }

    printHeader("Exp#1 (Fig. 12): interference study across traces",
                "RS(10,4), 4 clients per trace");

    std::map<Algorithm, Summary> tput_summary;
    std::size_t per_group = comparisonAlgorithms().size();
    runCells(cells, [&](std::size_t i,
                        const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        if (i % per_group == 0)
            std::printf("%s:\n",
                        profiles[i / per_group].name.c_str());
        printRow(runtime::algorithmName(cell.algorithm),
                 r.repairThroughput / 1e6, r.p99LatencyMs);
        tput_summary[cell.algorithm].add(r.repairThroughput / 1e6);
        if (cell.algorithm == Algorithm::kChameleon)
            printLatencyDetail(r.latency);
    });

    std::printf("\nAverages across traces:\n");
    for (auto algo : comparisonAlgorithms()) {
        std::printf("  %-16s %7.1f MB/s\n",
                    runtime::algorithmName(algo).c_str(),
                    tput_summary[algo].mean);
    }
    double cham = tput_summary[Algorithm::kChameleon].mean;
    std::printf("ChameleonEC vs CR: %+.1f%%, vs PPR: %+.1f%%, vs "
                "ECPipe: %+.1f%% (paper: +23.5%%, +31.4%%, "
                "+65.6%%)\n",
                (cham / tput_summary[Algorithm::kCr].mean - 1) * 100,
                (cham / tput_summary[Algorithm::kPpr].mean - 1) * 100,
                (cham / tput_summary[Algorithm::kEcpipe].mean - 1) *
                    100);
    return 0;
}
