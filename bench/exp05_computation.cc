/**
 * @file
 * Exp#5 / Figure 16: coordinator computation time to generate repair
 * plans, versus cluster size (n = 100..500 nodes) and the number of
 * chunks planned in a phase (200..1000). This measures the real
 * planner (task dispatch + Algorithm 1) with google-benchmark; the
 * paper reports <= ~0.6 s for 1000 chunks on a 500-node system.
 */

#include <benchmark/benchmark.h>

#include "repair/chameleon_planner.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace {

using namespace chameleon;
using namespace chameleon::repair;

constexpr int kK = 10;
constexpr int kM = 4;

/** Plans `chunks` chunks on an `nodes`-node cluster once. */
void
planBatch(int nodes, int chunks, Rng &rng)
{
    PlannerState state = PlannerState::make(nodes, 64 * units::MiB);
    for (int i = 0; i < nodes; ++i) {
        state.bandUp[static_cast<std::size_t>(i)] =
            (0.5 + rng.uniform()) * 1e9;
        state.bandDown[static_cast<std::size_t>(i)] =
            (0.5 + rng.uniform()) * 1e9;
    }

    for (int c = 0; c < chunks; ++c) {
        PlannerChunkInput input;
        input.stripe = c;
        input.failed = 0;
        input.required = kK;
        input.combinable = true;
        // Random distinct placement of the k+m-1 helpers.
        std::vector<bool> used(static_cast<std::size_t>(nodes), false);
        while (static_cast<int>(input.helperNodes.size()) <
               kK + kM - 1) {
            auto node = static_cast<NodeId>(
                rng.below(static_cast<uint64_t>(nodes)));
            if (used[static_cast<std::size_t>(node)])
                continue;
            used[static_cast<std::size_t>(node)] = true;
            input.helperNodes.push_back(node);
            input.helperChunks.push_back(
                static_cast<ChunkIndex>(input.helperNodes.size()));
            input.fractions.push_back(1.0);
        }
        for (NodeId node = 0; node < nodes; ++node)
            if (!used[static_cast<std::size_t>(node)])
                input.destCandidates.push_back(node);
        auto planned = planChunk(state, input);
        benchmark::DoNotOptimize(planned);
    }
}

void
BM_PlanPhase(benchmark::State &state)
{
    const int nodes = static_cast<int>(state.range(0));
    const int chunks = static_cast<int>(state.range(1));
    Rng rng(7);
    for (auto _ : state)
        planBatch(nodes, chunks, rng);
    state.SetLabel(std::to_string(nodes) + " nodes, " +
                   std::to_string(chunks) + " chunks");
}

BENCHMARK(BM_PlanPhase)
    ->ArgsProduct({{100, 200, 300, 400, 500}, {200, 600, 1000}})
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
