/**
 * @file
 * Microbenchmarks for the coding substrate: GF(2^8) region kernels,
 * RS/LRC encode, single-chunk repair computation, full decode, and
 * Butterfly sub-chunk repair. These verify that decoding bandwidth
 * far exceeds simulated link bandwidth — the paper's premise for
 * treating the network, not the CPU, as the repair bottleneck
 * (Section II-B).
 */

#include <benchmark/benchmark.h>

#include "ec/factory.hh"
#include "gf/gf256.hh"
#include "util/rng.hh"

namespace {

using namespace chameleon;

ec::Buffer
randomChunk(Rng &rng, std::size_t size)
{
    ec::Buffer b(size);
    for (auto &v : b)
        v = static_cast<uint8_t>(rng.below(256));
    return b;
}

void
BM_GfMulAddRegion(benchmark::State &state)
{
    const auto size = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    auto src = randomChunk(rng, size);
    ec::Buffer dst(size, 0);
    for (auto _ : state) {
        gf::mulAddRegion(std::span<uint8_t>(dst),
                         std::span<const uint8_t>(src), 0x57);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(size));
}
BENCHMARK(BM_GfMulAddRegion)->Arg(4096)->Arg(1 << 20);

void
BM_RsEncode(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    const int m = static_cast<int>(state.range(1));
    auto code = ec::makeRs(k, m);
    Rng rng(2);
    std::vector<ec::Buffer> data;
    for (int i = 0; i < k; ++i)
        data.push_back(randomChunk(rng, 1 << 20));
    for (auto _ : state) {
        auto parity = code->encode(data);
        benchmark::DoNotOptimize(parity.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * k * (1 << 20));
}
BENCHMARK(BM_RsEncode)->Args({6, 3})->Args({10, 4});

void
BM_RsRepairCompute(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    auto code = ec::makeRs(k, 4);
    Rng rng(3);
    std::vector<ec::Buffer> data;
    for (int i = 0; i < k; ++i)
        data.push_back(randomChunk(rng, 1 << 20));
    auto parity = code->encode(data);
    std::vector<ec::Buffer> chunks = data;
    for (auto &p : parity)
        chunks.push_back(std::move(p));

    std::vector<ChunkIndex> avail;
    for (ChunkIndex c = 1; c < code->n(); ++c)
        avail.push_back(c);
    auto spec = code->makeRepairSpec(0, avail, rng);
    std::vector<ec::Buffer> helper_data;
    for (const auto &read : spec.reads)
        helper_data.push_back(
            chunks[static_cast<std::size_t>(read.helper)]);

    for (auto _ : state) {
        auto out = code->repairCompute(spec, helper_data);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_RsRepairCompute)->Arg(6)->Arg(10);

void
BM_LrcLocalRepair(benchmark::State &state)
{
    auto code = ec::makeLrc(10, 2, 2);
    Rng rng(4);
    std::vector<ec::Buffer> data;
    for (int i = 0; i < code->k(); ++i)
        data.push_back(randomChunk(rng, 1 << 20));
    auto parity = code->encode(data);
    std::vector<ec::Buffer> chunks = data;
    for (auto &p : parity)
        chunks.push_back(std::move(p));
    std::vector<ChunkIndex> avail;
    for (ChunkIndex c = 1; c < code->n(); ++c)
        avail.push_back(c);
    auto spec = code->makeRepairSpec(0, avail, rng);
    std::vector<ec::Buffer> helper_data;
    for (const auto &read : spec.reads)
        helper_data.push_back(
            chunks[static_cast<std::size_t>(read.helper)]);
    for (auto _ : state) {
        auto out = code->repairCompute(spec, helper_data);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_LrcLocalRepair);

void
BM_ButterflyRepair(benchmark::State &state)
{
    auto code = ec::makeButterfly();
    Rng rng(5);
    std::vector<ec::Buffer> data = {randomChunk(rng, 1 << 20),
                                    randomChunk(rng, 1 << 20)};
    auto parity = code->encode(data);
    std::vector<ec::Buffer> chunks = data;
    for (auto &p : parity)
        chunks.push_back(std::move(p));
    std::vector<ChunkIndex> avail = {1, 2, 3};
    auto spec = code->makeRepairSpec(0, avail, rng);
    std::vector<ec::Buffer> helper_data;
    for (const auto &read : spec.reads)
        helper_data.push_back(
            chunks[static_cast<std::size_t>(read.helper)]);
    for (auto _ : state) {
        auto out = code->repairCompute(spec, helper_data);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_ButterflyRepair);

void
BM_RsDecodeMultiFailure(benchmark::State &state)
{
    auto code = ec::makeRs(10, 4);
    Rng rng(6);
    std::vector<ec::Buffer> data;
    for (int i = 0; i < code->k(); ++i)
        data.push_back(randomChunk(rng, 1 << 18));
    auto parity = code->encode(data);
    std::vector<ec::Buffer> chunks = data;
    for (auto &p : parity)
        chunks.push_back(std::move(p));
    for (auto _ : state) {
        auto damaged = chunks;
        damaged[0].clear();
        damaged[5].clear();
        damaged[11].clear();
        bool ok = code->decode(damaged);
        benchmark::DoNotOptimize(ok);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 3 * (1 << 18));
}
BENCHMARK(BM_RsDecodeMultiFailure);

} // namespace

BENCHMARK_MAIN();
