/**
 * @file
 * Microbenchmarks for the coding substrate: GF(2^8) region kernels
 * (per ISA variant and through the dispatched path), the fused
 * multi-source kernel, RS/LRC encode, single-chunk repair
 * computation, full decode, and Butterfly sub-chunk repair. These
 * verify that decoding bandwidth far exceeds simulated link
 * bandwidth — the paper's premise for treating the network, not the
 * CPU, as the repair bottleneck (Section II-B) — and report GB/s per
 * kernel so regressions in the SIMD layer land in the bench
 * trajectory. The reported "bytes_per_second" counter for region
 * kernels is source bytes processed.
 */

#include <benchmark/benchmark.h>

#include "ec/factory.hh"
#include "gf/gf256.hh"
#include "gf/gf_kernels.hh"
#include "util/rng.hh"

namespace {

using namespace chameleon;

ec::Buffer
randomChunk(Rng &rng, std::size_t size)
{
    ec::Buffer b(size);
    for (auto &v : b)
        v = static_cast<uint8_t>(rng.below(256));
    return b;
}

void
BM_GfMulAddRegion(benchmark::State &state)
{
    const auto size = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    auto src = randomChunk(rng, size);
    ec::Buffer dst(size, 0);
    for (auto _ : state) {
        gf::mulAddRegion(std::span<uint8_t>(dst),
                         std::span<const uint8_t>(src), 0x57);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(size));
}
BENCHMARK(BM_GfMulAddRegion)->Arg(4096)->Arg(64 << 10)->Arg(1 << 20);

/** One ISA variant's mulAdd, bypassing dispatch (kernel comparison). */
void
BM_GfMulAddRegionIsa(benchmark::State &state, gf::detail::Isa isa)
{
    const auto size = static_cast<std::size_t>(state.range(0));
    const auto &k = gf::detail::kernels(isa);
    Rng rng(1);
    auto src = randomChunk(rng, size);
    ec::Buffer dst(size, 0);
    for (auto _ : state) {
        k.mulAdd(dst.data(), src.data(), size, 0x57);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(size));
}

/** Fused multi-source kernel vs. k sequential mulAdd passes; bytes
 * processed counts all source bytes. */
void
BM_GfMulAddRegionMulti(benchmark::State &state)
{
    const auto size = static_cast<std::size_t>(state.range(0));
    const auto nsrc = static_cast<std::size_t>(state.range(1));
    Rng rng(7);
    std::vector<ec::Buffer> srcs;
    std::vector<const uint8_t *> ptrs;
    std::vector<uint8_t> coeffs;
    for (std::size_t j = 0; j < nsrc; ++j) {
        srcs.push_back(randomChunk(rng, size));
        coeffs.push_back(static_cast<uint8_t>(1 + rng.below(255)));
    }
    for (const auto &s : srcs)
        ptrs.push_back(s.data());
    ec::Buffer dst(size, 0);
    for (auto _ : state) {
        gf::mulAddRegionMulti(std::span<uint8_t>(dst), ptrs, coeffs);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(size * nsrc));
}
BENCHMARK(BM_GfMulAddRegionMulti)
    ->Args({64 << 10, 6})
    ->Args({1 << 20, 6})
    ->Args({1 << 20, 12});

/** Sequential-pass baseline for the fused kernel comparison. */
void
BM_GfMulAddRegionSequential(benchmark::State &state)
{
    const auto size = static_cast<std::size_t>(state.range(0));
    const auto nsrc = static_cast<std::size_t>(state.range(1));
    Rng rng(7);
    std::vector<ec::Buffer> srcs;
    std::vector<uint8_t> coeffs;
    for (std::size_t j = 0; j < nsrc; ++j) {
        srcs.push_back(randomChunk(rng, size));
        coeffs.push_back(static_cast<uint8_t>(1 + rng.below(255)));
    }
    ec::Buffer dst(size, 0);
    for (auto _ : state) {
        for (std::size_t j = 0; j < nsrc; ++j)
            gf::mulAddRegion(std::span<uint8_t>(dst),
                             std::span<const uint8_t>(srcs[j]),
                             coeffs[j]);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(size * nsrc));
}
BENCHMARK(BM_GfMulAddRegionSequential)
    ->Args({1 << 20, 6})
    ->Args({1 << 20, 12});

void
BM_RsEncode(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    const int m = static_cast<int>(state.range(1));
    auto code = ec::makeRs(k, m);
    Rng rng(2);
    std::vector<ec::Buffer> data;
    for (int i = 0; i < k; ++i)
        data.push_back(randomChunk(rng, 1 << 20));
    for (auto _ : state) {
        auto parity = code->encode(data);
        benchmark::DoNotOptimize(parity.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * k * (1 << 20));
}
BENCHMARK(BM_RsEncode)
    ->Args({6, 3})
    ->Args({10, 4})
    ->Args({20, 8})
    ->Args({24, 8});

void
BM_RsRepairCompute(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    auto code = ec::makeRs(k, 4);
    Rng rng(3);
    std::vector<ec::Buffer> data;
    for (int i = 0; i < k; ++i)
        data.push_back(randomChunk(rng, 1 << 20));
    auto parity = code->encode(data);
    std::vector<ec::Buffer> chunks = data;
    for (auto &p : parity)
        chunks.push_back(std::move(p));

    std::vector<ChunkIndex> avail;
    for (ChunkIndex c = 1; c < code->n(); ++c)
        avail.push_back(c);
    auto spec = code->makeRepairSpec(0, avail, rng);
    std::vector<ec::Buffer> helper_data;
    for (const auto &read : spec.reads)
        helper_data.push_back(
            chunks[static_cast<std::size_t>(read.helper)]);

    for (auto _ : state) {
        auto out = code->repairCompute(spec, helper_data);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_RsRepairCompute)->Arg(6)->Arg(10);

/** Single-chunk repairCompute for any registry spec; registered in
 * main() for the wide-RS / multi-group-LRC rows (Exp#17). */
void
BM_CodecRepair(benchmark::State &state, std::string spec)
{
    auto code = ec::makeCode(spec);
    Rng rng(8);
    std::vector<ec::Buffer> data;
    for (int i = 0; i < code->k(); ++i)
        data.push_back(randomChunk(rng, 1 << 20));
    auto parity = code->encode(data);
    std::vector<ec::Buffer> chunks = data;
    for (auto &p : parity)
        chunks.push_back(std::move(p));
    std::vector<ChunkIndex> avail;
    for (ChunkIndex c = 1; c < code->n(); ++c)
        avail.push_back(c);
    auto repair = code->makeRepairSpec(0, avail, rng);
    std::vector<ec::Buffer> helper_data;
    for (const auto &read : repair.reads)
        helper_data.push_back(
            chunks[static_cast<std::size_t>(read.helper)]);
    for (auto _ : state) {
        auto out = code->repairCompute(repair, helper_data);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * (1 << 20));
}

void
BM_LrcLocalRepair(benchmark::State &state)
{
    auto code = ec::makeLrc(10, 2, 2);
    Rng rng(4);
    std::vector<ec::Buffer> data;
    for (int i = 0; i < code->k(); ++i)
        data.push_back(randomChunk(rng, 1 << 20));
    auto parity = code->encode(data);
    std::vector<ec::Buffer> chunks = data;
    for (auto &p : parity)
        chunks.push_back(std::move(p));
    std::vector<ChunkIndex> avail;
    for (ChunkIndex c = 1; c < code->n(); ++c)
        avail.push_back(c);
    auto spec = code->makeRepairSpec(0, avail, rng);
    std::vector<ec::Buffer> helper_data;
    for (const auto &read : spec.reads)
        helper_data.push_back(
            chunks[static_cast<std::size_t>(read.helper)]);
    for (auto _ : state) {
        auto out = code->repairCompute(spec, helper_data);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_LrcLocalRepair);

void
BM_ButterflyRepair(benchmark::State &state)
{
    auto code = ec::makeButterfly();
    Rng rng(5);
    std::vector<ec::Buffer> data = {randomChunk(rng, 1 << 20),
                                    randomChunk(rng, 1 << 20)};
    auto parity = code->encode(data);
    std::vector<ec::Buffer> chunks = data;
    for (auto &p : parity)
        chunks.push_back(std::move(p));
    std::vector<ChunkIndex> avail = {1, 2, 3};
    auto spec = code->makeRepairSpec(0, avail, rng);
    std::vector<ec::Buffer> helper_data;
    for (const auto &read : spec.reads)
        helper_data.push_back(
            chunks[static_cast<std::size_t>(read.helper)]);
    for (auto _ : state) {
        auto out = code->repairCompute(spec, helper_data);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_ButterflyRepair);

void
BM_RsDecodeMultiFailure(benchmark::State &state)
{
    auto code = ec::makeRs(10, 4);
    Rng rng(6);
    std::vector<ec::Buffer> data;
    for (int i = 0; i < code->k(); ++i)
        data.push_back(randomChunk(rng, 1 << 18));
    auto parity = code->encode(data);
    std::vector<ec::Buffer> chunks = data;
    for (auto &p : parity)
        chunks.push_back(std::move(p));
    for (auto _ : state) {
        auto damaged = chunks;
        damaged[0].clear();
        damaged[5].clear();
        damaged[11].clear();
        bool ok = code->decode(damaged);
        benchmark::DoNotOptimize(ok);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 3 * (1 << 18));
}
BENCHMARK(BM_RsDecodeMultiFailure);

} // namespace

/**
 * Custom main: the per-ISA kernel benchmarks are registered at
 * runtime because the set of usable kernels depends on what this CPU
 * supports (and on CHAMELEON_FORCE_SCALAR / CHAMELEON_GF_KERNEL).
 * Registered names look like BM_GfMulAddRegionIsa/avx2/1048576.
 */
int
main(int argc, char **argv)
{
    for (gf::detail::Isa isa : gf::detail::availableIsas()) {
        for (long size : {4096L, 64L << 10, 1L << 20}) {
            std::string name = std::string("BM_GfMulAddRegionIsa/") +
                               gf::detail::isaName(isa);
            benchmark::RegisterBenchmark(
                name.c_str(), BM_GfMulAddRegionIsa, isa)
                ->Arg(size);
        }
    }
    for (const char *spec : {"rs(20,8)", "rs(24,8)",
                             "lrc(12,2,2,2)", "lrc(24,4,2,2)"}) {
        std::string name =
            std::string("BM_CodecRepair/") + spec + "/1MiB";
        benchmark::RegisterBenchmark(name.c_str(), BM_CodecRepair,
                                     std::string(spec));
    }
    benchmark::AddCustomContext("gf_kernel", gf::kernelName());
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
