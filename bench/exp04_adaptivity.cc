/**
 * @file
 * Exp#4 / Figure 15: adaptivity to dynamically transitioning traces.
 * Each trace plays for 15 s, then the next takes over, while repair
 * runs; the per-window repair throughput timeline shows ChameleonEC
 * dipping briefly at each transition and recovering (the paper
 * measures an average advantage of 51.5/53.0/97.2% over
 * CR/PPR/ECPipe under transitions).
 */

#include <cstdio>
#include <map>
#include <memory>

#include "bench_common.hh"

namespace {

/** Per-cell trace-rotation hook; each cell owns its own state, so
 * cells stay independent under concurrent sweep workers. */
chameleon::runtime::ExperimentHooks
rotationHooks()
{
    using namespace chameleon;
    struct SwitchState
    {
        std::size_t next = 1;
        SimTime lastSwitch = 0.0;
    };
    auto profiles = traffic::allProfiles();
    auto state = std::make_shared<SwitchState>();
    runtime::ExperimentHooks hooks;
    hooks.onSample = [profiles, state](
                         SimTime now,
                         traffic::ForegroundDriver *driver) {
        if (!driver)
            return;
        if (now - state->lastSwitch >= 15.0) {
            driver->switchProfile(
                profiles[state->next % profiles.size()]);
            state->next++;
            state->lastSwitch = now;
        }
    };
    return hooks;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // Exercise the profile-switch hook: rotate the trace once
        // mid-repair and require a repair-traffic timeline.
        auto switched = std::make_shared<bool>(false);
        runtime::SweepCell cell =
            makeCell("hook switch", Algorithm::kChameleon);
        cell.config.chunksToRepair = kSmokeChunks;
        cell.config.seed = 7;
        cell.deriveSeed = false;
        cell.hooks.onSample = [switched](
                                  SimTime,
                                  traffic::ForegroundDriver *d) {
            if (d && !*switched) {
                d->switchProfile(traffic::facebookEtc());
                *switched = true;
            }
        };
        ShapeChecker chk;
        auto results = runCells({cell});
        const auto &r = results.at(0);
        chk.positive("repair throughput MB/s",
                     r.repairThroughput / 1e6);
        chk.check("trace switched mid-repair", *switched);
        chk.positive("throughput timeline samples",
                     static_cast<double>(r.throughputTimeline.size()));
        return chk.exitCode();
    }

    std::vector<runtime::SweepCell> cells;
    for (auto algo : comparisonAlgorithms()) {
        auto cell = makeCell(runtime::algorithmName(algo), algo, 0,
                             [](runtime::ExperimentConfig &cfg) {
                                 // Long enough to span several 15 s
                                 // trace transitions.
                                 cfg.chunksToRepair = 150;
                             });
        cell.hooks = rotationHooks();
        cells.push_back(std::move(cell));
    }

    printHeader("Exp#4 (Fig. 15): adaptivity under trace transitions",
                "traces rotate every 15 s during repair");

    std::map<Algorithm, double> avg;
    runCells(cells, [&](std::size_t, const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        avg[cell.algorithm] = r.repairThroughput;
        std::printf("%s: overall %.1f MB/s; repair traffic (MB/s per "
                    "%.0f s window):\n  ",
                    cell.label.c_str(), r.repairThroughput / 1e6,
                    r.timelinePeriod);
        for (std::size_t i = 0; i < r.trafficTimeline.size(); ++i)
            std::printf("%5.0f%s", r.trafficTimeline[i] / 1e6,
                        (i + 1) % 12 == 0 ? "\n  " : " ");
        std::printf("\n");
    });
    std::printf("\nChameleonEC vs CR under transitions: %+.1f%% "
                "(paper: +51.5%%)\n",
                (avg[Algorithm::kChameleon] / avg[Algorithm::kCr] -
                 1) *
                    100.0);
    return 0;
}
