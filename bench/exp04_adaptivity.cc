/**
 * @file
 * Exp#4 / Figure 15: adaptivity to dynamically transitioning traces.
 * Each trace plays for 15 s, then the next takes over, while repair
 * runs; the per-window repair throughput timeline shows ChameleonEC
 * dipping briefly at each transition and recovering (the paper
 * measures an average advantage of 51.5/53.0/97.2% over
 * CR/PPR/ECPipe under transitions).
 */

#include <cstdio>
#include <map>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using analysis::Algorithm;

    init(argc, argv);
    if (smoke) {
        // Exercise the profile-switch hook: rotate the trace once
        // mid-repair and require a repair-traffic timeline.
        auto switched = std::make_shared<bool>(false);
        analysis::ExperimentHooks hooks;
        hooks.onSample = [switched](SimTime,
                                    traffic::ForegroundDriver *d) {
            if (d && !*switched) {
                d->switchProfile(traffic::facebookEtc());
                *switched = true;
            }
        };
        ShapeChecker chk;
        auto cfg = defaultConfig();
        cfg.chunksToRepair = kSmokeChunks;
        cfg.seed = 7;
        auto r = runExperiment(Algorithm::kChameleon, cfg, hooks);
        chk.positive("repair throughput MB/s",
                     r.repairThroughput / 1e6);
        chk.check("trace switched mid-repair", *switched);
        chk.positive("throughput timeline samples",
                     static_cast<double>(r.throughputTimeline.size()));
        return chk.exitCode();
    }

    printHeader("Exp#4 (Fig. 15): adaptivity under trace transitions",
                "traces rotate every 15 s during repair");

    std::map<analysis::Algorithm, double> avg;
    for (auto algo : comparisonAlgorithms()) {
        auto cfg = defaultConfig();
        // Long enough to span several 15 s trace transitions.
        cfg.chunksToRepair = 150;
        auto profiles = traffic::allProfiles();

        // Rotate profiles every 15 seconds.
        struct SwitchState
        {
            std::size_t next = 1;
            SimTime lastSwitch = 0.0;
        };
        auto state = std::make_shared<SwitchState>();
        analysis::ExperimentHooks hooks;
        hooks.onSample = [profiles, state](
                             SimTime now,
                             traffic::ForegroundDriver *driver) {
            if (!driver)
                return;
            if (now - state->lastSwitch >= 15.0) {
                driver->switchProfile(
                    profiles[state->next % profiles.size()]);
                state->next++;
                state->lastSwitch = now;
            }
        };
        auto r = runExperiment(algo, cfg, hooks);
        avg[algo] = r.repairThroughput;
        std::printf("%s: overall %.1f MB/s; repair traffic (MB/s per "
                    "%.0f s window):\n  ",
                    analysis::algorithmName(algo).c_str(),
                    r.repairThroughput / 1e6, r.timelinePeriod);
        for (std::size_t i = 0; i < r.trafficTimeline.size(); ++i)
            std::printf("%5.0f%s", r.trafficTimeline[i] / 1e6,
                        (i + 1) % 12 == 0 ? "\n  " : " ");
        std::printf("\n");
    }
    std::printf("\nChameleonEC vs CR under transitions: %+.1f%% "
                "(paper: +51.5%%)\n",
                (avg[analysis::Algorithm::kChameleon] /
                     avg[analysis::Algorithm::kCr] -
                 1) *
                    100.0);
    return 0;
}
