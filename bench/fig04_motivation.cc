/**
 * @file
 * Figure 4 (Section II-D motivation): repair time and YCSB P99
 * latency as the number of foreground clients grows from 0 to 4, for
 * CR, PPR, and ECPipe. The paper finds interference inflates repair
 * time by 3.6-91.5% and P99 by 4.7-31.5%, and that CR outperforms
 * PPR/ECPipe once foreground traffic fluctuates.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using analysis::Algorithm;

    init(argc, argv);
    if (smoke) {
        // One loaded and one unloaded cell of the motivation study.
        int failures = runSmoke("fig04_motivation (loaded)",
                                {Algorithm::kCr});
        failures += runSmoke(
            "fig04_motivation (no clients)", {Algorithm::kCr},
            [](analysis::ExperimentConfig &cfg) {
                cfg.trace.reset();
            });
        return failures ? 1 : 0;
    }

    printHeader("Figure 4: interference study (repair vs #clients)",
                "RS(10,4), YCSB-A, clients C = 0..4");

    // YCSB-only P99 baseline (no repair), C = 4.
    {
        auto cfg = defaultConfig();
        cfg.requestsPerClient = 3000;
        auto r = runExperiment(Algorithm::kNone, cfg);
        std::printf("YCSB-only (C=4):            P99 %6.1f ms\n",
                    r.p99LatencyMs);
    }

    for (auto algo :
         {Algorithm::kCr, Algorithm::kPpr, Algorithm::kEcpipe}) {
        std::printf("%s:\n", analysis::algorithmName(algo).c_str());
        for (int clients = 0; clients <= 4; ++clients) {
            auto cfg = defaultConfig();
            if (clients == 0) {
                cfg.trace.reset();
            } else {
                cfg.cluster.numClients = clients;
            }
            auto r = runExperiment(algo, cfg);
            if (clients == 0) {
                std::printf("  C=%d  repair time %6.1f s   P99      "
                            "- \n",
                            clients, r.repairTime);
            } else {
                std::printf("  C=%d  repair time %6.1f s   P99 %6.1f "
                            "ms\n",
                            clients, r.repairTime, r.p99LatencyMs);
            }
        }
    }
    std::printf("\nShape check: repair time grows with C; with "
                "foreground running, CR >= PPR >= ECPipe in repair "
                "throughput (the paper's inversion).\n");
    return 0;
}
