/**
 * @file
 * Figure 4 (Section II-D motivation): repair time and YCSB P99
 * latency as the number of foreground clients grows from 0 to 4, for
 * CR, PPR, and ECPipe. The paper finds interference inflates repair
 * time by 3.6-91.5% and P99 by 4.7-31.5%, and that CR outperforms
 * PPR/ECPipe once foreground traffic fluctuates.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // One loaded and one unloaded cell of the motivation study.
        int failures = runSmoke("fig04_motivation (loaded)",
                                {Algorithm::kCr});
        failures += runSmoke(
            "fig04_motivation (no clients)", {Algorithm::kCr},
            [](runtime::ExperimentConfig &cfg) {
                cfg.trace.reset();
            });
        return failures ? 1 : 0;
    }

    // Cell 0: YCSB-only P99 baseline (no repair), C = 4. Then one
    // group per algorithm across client counts 0..4; equal client
    // counts share a seedIndex (same foreground workload).
    const std::vector<Algorithm> algos = {
        Algorithm::kCr, Algorithm::kPpr, Algorithm::kEcpipe};
    std::vector<runtime::SweepCell> cells;
    cells.push_back(makeCell("YCSB-only (C=4)", Algorithm::kNone, 5,
                             [](runtime::ExperimentConfig &cfg) {
                                 cfg.requestsPerClient = 3000;
                             }));
    for (auto algo : algos) {
        for (int clients = 0; clients <= 4; ++clients) {
            char label[48];
            std::snprintf(label, sizeof(label), "%s / C=%d",
                          runtime::algorithmName(algo).c_str(),
                          clients);
            cells.push_back(makeCell(
                label, algo, clients,
                [clients](runtime::ExperimentConfig &cfg) {
                    if (clients == 0)
                        cfg.trace.reset();
                    else
                        cfg.cluster.numClients = clients;
                }));
        }
    }

    printHeader("Figure 4: interference study (repair vs #clients)",
                "RS(10,4), YCSB-A, clients C = 0..4");

    runCells(cells, [&](std::size_t i,
                        const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        if (i == 0) {
            std::printf("YCSB-only (C=4):            P99 %6.1f ms\n",
                        r.p99LatencyMs);
            return;
        }
        int clients = static_cast<int>((i - 1) % 5);
        if (clients == 0)
            std::printf("%s:\n",
                        runtime::algorithmName(cell.algorithm)
                            .c_str());
        if (clients == 0)
            std::printf("  C=%d  repair time %6.1f s   P99      "
                        "- \n",
                        clients, r.repairTime);
        else
            std::printf("  C=%d  repair time %6.1f s   P99 %6.1f "
                        "ms\n",
                        clients, r.repairTime, r.p99LatencyMs);
    });
    std::printf("\nShape check: repair time grows with C; with "
                "foreground running, CR >= PPR >= ECPipe in repair "
                "throughput (the paper's inversion).\n");
    return 0;
}
