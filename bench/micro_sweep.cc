/**
 * @file
 * Microbenchmark for the sweep executor itself: runs a fixed 24-cell
 * table (4 algorithms x 6 workload groups) twice — --jobs 1 and
 * --jobs <hardware> — and records both wall-clock times plus whether
 * the two emitted tables are byte-identical (the SweepRunner
 * determinism contract) in BENCH_runtime.json.
 *
 * Exit code: non-zero if the tables differ; the speedup itself is
 * recorded, not asserted (it depends on the machine's core count).
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "util/format.hh"

namespace {

using namespace chameleon;
using namespace chameleon::bench;
using runtime::Algorithm;

std::vector<runtime::SweepCell>
buildTable(int chunks)
{
    // 6 workload groups: the four traces, a no-foreground cell, and
    // a low-bandwidth cell. Each group runs the four comparison
    // algorithms on one shared workload (seedIndex = group).
    std::vector<runtime::SweepCell> cells;
    auto profiles = traffic::allProfiles();
    int group = 0;
    auto add = [&](const std::string &name,
                   const std::function<void(
                       runtime::ExperimentConfig &)> &tweak) {
        for (auto algo : comparisonAlgorithms()) {
            auto cell = makeCell(
                name + " / " + runtime::algorithmName(algo), algo,
                group, tweak);
            cell.config.chunksToRepair = chunks;
            cells.push_back(std::move(cell));
        }
        ++group;
    };
    for (const auto &profile : profiles)
        add(profile.name, [profile](runtime::ExperimentConfig &cfg) {
            cfg.trace = profile;
        });
    add("no-foreground", [](runtime::ExperimentConfig &cfg) {
        cfg.trace.reset();
    });
    add("1Gbps", [](runtime::ExperimentConfig &cfg) {
        cfg.cluster.uplinkBw = 1.0 * units::Gbps;
        cfg.cluster.downlinkBw = 1.0 * units::Gbps;
    });
    return cells;
}

/** Renders every cell's headline numbers into one string; comparing
 * the -j1 and -jN renderings byte-for-byte is the determinism
 * check. */
std::string
renderTable(const std::vector<runtime::SweepCell> &cells,
            const std::vector<runtime::ExperimentResult> &results)
{
    std::string table;
    char line[160];
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &r = results[i];
        std::snprintf(line, sizeof(line),
                      "%-40s %12.3f MB/s  %8.3f s  %3d chunks  "
                      "P99 %9.3f ms\n",
                      cells[i].label.c_str(),
                      r.repairThroughput / 1e6, r.repairTime,
                      r.chunksRepaired, r.p99LatencyMs);
        table += line;
    }
    return table;
}

double
timedRun(const std::vector<runtime::SweepCell> &cells, int jobs,
         std::string *table)
{
    runtime::SweepOptions so;
    so.jobs = jobs;
    so.baseSeed = opts().seed;
    // Keep the process telemetry context clean across the two runs
    // so both execute identical work.
    so.mergeTelemetry = false;
    runtime::SweepRunner runner(so);
    auto start = std::chrono::steady_clock::now();
    auto results = runner.run(cells);
    auto end = std::chrono::steady_clock::now();
    *table = renderTable(cells, results);
    return std::chrono::duration<double>(end - start).count();
}

} // namespace

int
main(int argc, char **argv)
{
    init(argc, argv);

    int chunks = opts().smoke ? kSmokeChunks : 10;
    auto cells = buildTable(chunks);
    if (opts().list) {
        // Reuse the shared --list rendering.
        runCells(cells);
        return 0;
    }

    int hw = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    int parallel_jobs = opts().jobs > 1 ? opts().jobs
                                        : (opts().smoke ? 2 : hw);

    std::printf("micro_sweep: %zu cells, %d chunks each; "
                "--jobs 1 vs --jobs %d\n",
                cells.size(), chunks, parallel_jobs);

    std::string serial_table, parallel_table;
    double serial_s = timedRun(cells, 1, &serial_table);
    double parallel_s =
        timedRun(cells, parallel_jobs, &parallel_table);
    bool identical = serial_table == parallel_table;
    double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;

    std::printf("%s", serial_table.c_str());
    std::printf("\n--jobs 1: %.2f s   --jobs %d: %.2f s   "
                "speedup %.2fx\n",
                serial_s, parallel_jobs, parallel_s, speedup);
    std::printf("  [%s] -j1 and -j%d tables byte-identical\n",
                identical ? "ok" : "FAIL", parallel_jobs);

    std::FILE *json = std::fopen("BENCH_runtime.json", "w");
    if (json) {
        std::fprintf(
            json,
            "{\n"
            "  \"bench\": \"micro_sweep\",\n"
            "  \"cells\": %zu,\n"
            "  \"chunks_per_cell\": %d,\n"
            "  \"hardware_concurrency\": %d,\n"
            "  \"jobs_parallel\": %d,\n"
            "  \"seconds_jobs1\": %s,\n"
            "  \"seconds_jobsN\": %s,\n"
            "  \"speedup\": %s,\n"
            "  \"identical_tables\": %s\n"
            "}\n",
            cells.size(), chunks, hw, parallel_jobs,
            formatDouble(serial_s).c_str(),
            formatDouble(parallel_s).c_str(),
            formatDouble(speedup).c_str(),
            identical ? "true" : "false");
        std::fclose(json);
        std::printf("wrote BENCH_runtime.json\n");
    } else {
        std::fprintf(stderr, "cannot write BENCH_runtime.json\n");
    }
    return identical ? 0 : 1;
}
