/**
 * @file
 * Ablation sweeps over the model-calibration knobs DESIGN.md calls
 * out (Section "Model calibration"), so their effect on the paper's
 * shapes is visible rather than baked in:
 *  - relay forwarding overhead: drives the CR/PPR/ECPipe ordering;
 *  - per-node recovery streams (upload slots): sets the repair
 *    operating point;
 *  - ChameleonEC ablations: admission pacing (T_phase already swept
 *    in exp03), SAR switches (exp11), and the expectation safety
 *    factor swept here.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using analysis::Algorithm;

    init(argc, argv);
    if (smoke) {
        // One off-default knob per family: relay overhead off and a
        // constrained upload-slot count.
        int failures = runSmoke(
            "ablation_knobs (overhead=0)", {Algorithm::kEcpipe},
            [](analysis::ExperimentConfig &cfg) {
                cfg.exec.relayOverheadPerMiB = 0.0;
            });
        failures += runSmoke(
            "ablation_knobs (1 upload slot)", {Algorithm::kCr},
            [](analysis::ExperimentConfig &cfg) {
                cfg.exec.nodeUploadSlots = 1;
            });
        return failures ? 1 : 0;
    }

    printHeader("Ablation: model calibration knobs",
                "RS(10,4), YCSB-A unless noted");

    std::printf("relay overhead per MiB (0 restores the classical "
                "chains-win ordering):\n");
    for (double ovh : {0.0, 0.005, 0.010, 0.020}) {
        std::printf("  %4.0f ms/MiB:", ovh * 1e3);
        for (auto algo : {Algorithm::kCr, Algorithm::kPpr,
                          Algorithm::kEcpipe}) {
            auto cfg = defaultConfig();
            cfg.exec.relayOverheadPerMiB = ovh;
            auto r = runExperiment(algo, cfg);
            std::printf("  %s=%5.1f",
                        analysis::algorithmName(algo).c_str(),
                        r.repairThroughput / 1e6);
        }
        std::printf("\n");
    }

    std::printf("\nper-node recovery streams (upload slots):\n");
    for (int slots : {1, 2, 4, 8}) {
        std::printf("  %d slots:", slots);
        for (auto algo : {Algorithm::kCr, Algorithm::kChameleon}) {
            auto cfg = defaultConfig();
            cfg.exec.nodeUploadSlots = slots;
            auto r = runExperiment(algo, cfg);
            std::printf("  %s=%5.1f (p99 %4.1f ms)",
                        analysis::algorithmName(algo).c_str(),
                        r.repairThroughput / 1e6, r.p99LatencyMs);
        }
        std::printf("\n");
    }

    std::printf("\nChameleonEC expectation safety factor (straggler "
                "detection sensitivity):\n");
    for (double factor : {1.0, 2.0, 4.0}) {
        auto cfg = defaultConfig();
        cfg.chameleon.expectationFactor = factor;
        cfg.stragglers.push_back(analysis::StragglerEvent{
            2.0, kInvalidNode, 0.05, 15.0, true, true});
        cfg.chameleon.checkPeriod = 1.0;
        auto r = runExperiment(Algorithm::kChameleon, cfg);
        std::printf("  factor %.0f: %6.1f MB/s (retunes %d, "
                    "reorders %d)\n",
                    factor, r.repairThroughput / 1e6, r.retunes,
                    r.reorders);
    }

    std::printf("\nrack oversubscription (hierarchical topology; "
                "flat = the paper's EC2 setting):\n");
    for (double oversub : {1.0, 2.0, 4.0}) {
        std::printf("  %.0f:1 oversub:", oversub);
        for (auto algo : {Algorithm::kCr, Algorithm::kChameleon}) {
            auto cfg = defaultConfig();
            cfg.cluster.racks = 4;
            cfg.cluster.rackOversubscription = oversub;
            auto r = runExperiment(algo, cfg);
            std::printf("  %s=%5.1f",
                        analysis::algorithmName(algo).c_str(),
                        r.repairThroughput / 1e6);
        }
        std::printf("\n");
    }

    std::printf("\nShape checks: overhead 0 puts PPR/ECPipe on top; "
                "the default 10 ms/MiB yields the paper's "
                "CR-over-chains ordering. More recovery streams lift "
                "repair throughput at the cost of foreground P99. "
                "Straggler handling is robust across detection "
                "sensitivities.\n");
    return 0;
}
