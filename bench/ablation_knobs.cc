/**
 * @file
 * Ablation sweeps over the model-calibration knobs DESIGN.md calls
 * out (Section "Model calibration"), so their effect on the paper's
 * shapes is visible rather than baked in:
 *  - relay forwarding overhead: drives the CR/PPR/ECPipe ordering;
 *  - per-node recovery streams (upload slots): sets the repair
 *    operating point;
 *  - ChameleonEC ablations: admission pacing (T_phase already swept
 *    in exp03), SAR switches (exp11), and the expectation safety
 *    factor swept here.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // One off-default knob per family: relay overhead off and a
        // constrained upload-slot count.
        int failures = runSmoke(
            "ablation_knobs (overhead=0)", {Algorithm::kEcpipe},
            [](runtime::ExperimentConfig &cfg) {
                cfg.exec.relayOverheadPerMiB = 0.0;
            });
        failures += runSmoke(
            "ablation_knobs (1 upload slot)", {Algorithm::kCr},
            [](runtime::ExperimentConfig &cfg) {
                cfg.exec.nodeUploadSlots = 1;
            });
        return failures ? 1 : 0;
    }

    // Four knob families, flattened into one table. Every cell in a
    // family's row shares a seedIndex (same workload, different
    // algorithm); the emit lambda below replays the original
    // row-oriented formatting, keyed by cell index ranges.
    std::vector<runtime::SweepCell> cells;
    int group = 0;

    const std::vector<double> overheads = {0.0, 0.005, 0.010, 0.020};
    const std::vector<Algorithm> overhead_algos = {
        Algorithm::kCr, Algorithm::kPpr, Algorithm::kEcpipe};
    for (double ovh : overheads) {
        for (auto algo : overhead_algos)
            cells.push_back(makeCell(
                "overhead", algo, group,
                [ovh](runtime::ExperimentConfig &cfg) {
                    cfg.exec.relayOverheadPerMiB = ovh;
                }));
        ++group;
    }
    std::size_t slots_begin = cells.size();

    const std::vector<int> slot_counts = {1, 2, 4, 8};
    const std::vector<Algorithm> slot_algos = {Algorithm::kCr,
                                               Algorithm::kChameleon};
    for (int slots : slot_counts) {
        for (auto algo : slot_algos)
            cells.push_back(makeCell(
                "slots", algo, group,
                [slots](runtime::ExperimentConfig &cfg) {
                    cfg.exec.nodeUploadSlots = slots;
                }));
        ++group;
    }
    std::size_t factor_begin = cells.size();

    const std::vector<double> factors = {1.0, 2.0, 4.0};
    for (double factor : factors) {
        cells.push_back(makeCell(
            "factor", Algorithm::kChameleon, group++,
            [factor](runtime::ExperimentConfig &cfg) {
                cfg.chameleon.expectationFactor = factor;
                cfg.stragglers.push_back(runtime::StragglerEvent{
                    2.0, kInvalidNode, 0.05, 15.0, true, true});
                cfg.chameleon.checkPeriod = 1.0;
            }));
    }
    std::size_t oversub_begin = cells.size();

    const std::vector<double> oversubs = {1.0, 2.0, 4.0};
    for (double oversub : oversubs) {
        for (auto algo : slot_algos)
            cells.push_back(makeCell(
                "oversub", algo, group,
                [oversub](runtime::ExperimentConfig &cfg) {
                    cfg.cluster.racks = 4;
                    cfg.cluster.rackOversubscription = oversub;
                }));
        ++group;
    }

    printHeader("Ablation: model calibration knobs",
                "RS(10,4), YCSB-A unless noted");

    runCells(cells, [&](std::size_t i,
                        const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        if (i < slots_begin) {
            std::size_t row = i / overhead_algos.size();
            if (i == 0)
                std::printf("relay overhead per MiB (0 restores the "
                            "classical chains-win ordering):\n");
            if (i % overhead_algos.size() == 0)
                std::printf("  %4.0f ms/MiB:", overheads[row] * 1e3);
            std::printf("  %s=%5.1f",
                        runtime::algorithmName(cell.algorithm)
                            .c_str(),
                        r.repairThroughput / 1e6);
            if (i % overhead_algos.size() ==
                overhead_algos.size() - 1)
                std::printf("\n");
        } else if (i < factor_begin) {
            std::size_t j = i - slots_begin;
            std::size_t row = j / slot_algos.size();
            if (j == 0)
                std::printf("\nper-node recovery streams (upload "
                            "slots):\n");
            if (j % slot_algos.size() == 0)
                std::printf("  %d slots:", slot_counts[row]);
            std::printf("  %s=%5.1f (p99 %4.1f ms)",
                        runtime::algorithmName(cell.algorithm)
                            .c_str(),
                        r.repairThroughput / 1e6, r.p99LatencyMs);
            if (j % slot_algos.size() == slot_algos.size() - 1)
                std::printf("\n");
        } else if (i < oversub_begin) {
            std::size_t j = i - factor_begin;
            if (j == 0)
                std::printf("\nChameleonEC expectation safety factor "
                            "(straggler detection sensitivity):\n");
            std::printf("  factor %.0f: %6.1f MB/s (retunes %d, "
                        "reorders %d)\n",
                        factors[j], r.repairThroughput / 1e6,
                        r.retunes, r.reorders);
        } else {
            std::size_t j = i - oversub_begin;
            std::size_t row = j / slot_algos.size();
            if (j == 0)
                std::printf("\nrack oversubscription (hierarchical "
                            "topology; flat = the paper's EC2 "
                            "setting):\n");
            if (j % slot_algos.size() == 0)
                std::printf("  %.0f:1 oversub:", oversubs[row]);
            std::printf("  %s=%5.1f",
                        runtime::algorithmName(cell.algorithm)
                            .c_str(),
                        r.repairThroughput / 1e6);
            if (j % slot_algos.size() == slot_algos.size() - 1)
                std::printf("\n");
        }
    });

    std::printf("\nShape checks: overhead 0 puts PPR/ECPipe on top; "
                "the default 10 ms/MiB yields the paper's "
                "CR-over-chains ordering. More recovery streams lift "
                "repair throughput at the cost of foreground P99. "
                "Straggler handling is robust across detection "
                "sensitivities.\n");
    return 0;
}
