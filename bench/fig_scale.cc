/**
 * @file
 * Scale sweep for the cluster layer: events/sec and peak RSS as the
 * simulated cluster grows from 50 nodes / 10^4 stripes to 5000
 * nodes / 10^6 stripes, with repair routed through the background
 * replicator scanner and prioritized repair queue (the scale-out
 * path). Each cell fails node 0 and repairs every chunk it hosted;
 * the expected chunk count is recomputed from the same seed
 * derivation the runtime uses, so the cell checks that the scanner
 * discovered and repaired exactly the hosted set. The standalone
 * StripeTable of each cell is also measured against its documented
 * <= 16*n + 64 bytes/stripe budget.
 *
 * Results go to BENCH_scale.json (events/sec and peak-RSS rows, in
 * the micro_sim style). Exit code: non-zero if any cell fails its
 * checks; the rates are recorded, not asserted.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <sys/resource.h>
#include <vector>

#include "bench_common.hh"
#include "cluster/stripe_manager.hh"
#include "runtime/runtime.hh"
#include "util/format.hh"
#include "util/rng.hh"

namespace {

using namespace chameleon;
using namespace chameleon::bench;

/** Process peak RSS in bytes (VmHWM, getrusage fallback). Monotone
 * high-water mark — cells run smallest first so the number tracks
 * the largest cell completed so far. */
double
peakRssBytes()
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0)
            return std::strtod(line.c_str() + 6, nullptr) * 1024.0;
    }
    struct rusage ru = {};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<double>(ru.ru_maxrss) * 1024.0;
}

struct Cell
{
    int nodes = 0;
    int stripes = 0;
};

struct CellResult
{
    Cell cell;
    long long expectedChunks = 0;
    long long chunksRepaired = 0;
    long long unrecoverable = 0;
    long long events = 0;
    long long queueScanSteps = 0;
    long long queueMemoSkips = 0;
    long long rateRecomputes = 0;
    long long recomputeFlowVisits = 0;
    double seconds = 0.0;
    double eventsPerSec = 0.0;
    double bytesPerStripe = 0.0;
    double peakRss = 0.0;
    double repairTime = 0.0;
};

CellResult
runCell(const Cell &cell)
{
    CellResult r;
    r.cell = cell;

    runtime::ExperimentConfig cfg;
    cfg.cluster.numNodes = cell.nodes;
    cfg.cluster.numClients = 0;
    cfg.stripes = cell.stripes;
    cfg.trace.reset();
    cfg.seed = 42;
    cfg.scanner.enabled = true;
    cfg.scanner.batchSize = 65536;
    cfg.scanner.tickInterval = 1.0;
    // Tight admission caps keep the cells comparable across cluster
    // sizes: in-flight repairs bound the incremental solver's dirty
    // component, so events/sec measures the scale-out layer rather
    // than max-min fill rounds over one cluster-wide flow component
    // (which the default 256-job cap produces at 1000+ nodes).
    cfg.scanner.queue.maxTotalJobs = 16;
    cfg.scanner.queue.maxNodeJobs = 2;

    // Standalone table with the runtime's exact seed derivation
    // (Rng(seed).split() feeds placement): measures the SoA memory
    // budget and predicts the repair workload of failing node 0.
    {
        Rng rng(cfg.seed);
        Rng placement = rng.split();
        cluster::StripeManager stripes(cfg.code, cell.nodes);
        stripes.createStripes(cell.stripes, placement);
        r.expectedChunks = static_cast<long long>(
            stripes.chunksOnNode(0).size());
        r.bytesPerStripe =
            static_cast<double>(stripes.table().memoryBytes()) /
            cell.stripes;
    }

    runtime::RuntimeOptions opts;
    opts.isolateTelemetry = true;
    runtime::Runtime rt(runtime::Algorithm::kCr, cfg, opts);
    const auto start = std::chrono::steady_clock::now();
    const runtime::ExperimentResult res = rt.run();
    r.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    r.chunksRepaired = res.chunksRepaired;
    r.unrecoverable = res.chunksUnrecoverable;
    r.repairTime = res.repairTime;
    const auto snap = rt.runTelemetry()->metrics.snapshot();
    if (const auto *ev = snap.find("sim.events_executed"))
        r.events = static_cast<long long>(ev->value);
    // Admission-scan work: scan_steps pays a helper-set derivation
    // (allocation + code-pool walk) per step; memo_skips are O(1)
    // saturation-memo hits. Their ratio explains where pop() time
    // goes when the queue is deep and node-saturated (the 50-node
    // cell: ~2.8k chunks queued behind maxNodeJobs=2 on 50 nodes,
    // 1.0M scans amortized by 3.9M memo skips).
    if (const auto *ss = snap.find("repair.queue.scan_steps"))
        r.queueScanSteps = static_cast<long long>(ss->value);
    if (const auto *ms = snap.find("repair.queue.memo_skips"))
        r.queueMemoSkips = static_cast<long long>(ms->value);
    // Solver work: flow visits per recompute is the per-event cost
    // knob. The 200-node cell's low events/sec is solver-bound, not
    // queue-bound — its (nodes, in-flight caps) point maximizes how
    // many repair flows share each max-min component, so every flow
    // completion re-rates a larger component than at 50 nodes
    // (fewer resources total) or 1000+ nodes (repairs spread out and
    // stop overlapping). See the bench description in the JSON.
    if (const auto *rr = snap.find("sim.rate_recomputes"))
        r.rateRecomputes = static_cast<long long>(rr->value);
    if (const auto *fv = snap.find("sim.rate_recompute_flow_visits"))
        r.recomputeFlowVisits = static_cast<long long>(fv->value);
    r.eventsPerSec = r.seconds > 0 ? r.events / r.seconds : 0.0;
    r.peakRss = peakRssBytes();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    init(argc, argv);
    const bool smoke = opts().smoke;

    // Smallest first so the peak-RSS high-water mark per row is the
    // row's own footprint.
    std::vector<Cell> cells;
    if (smoke) {
        cells = {{50, 2000}, {200, 5000}};
    } else {
        cells = {{50, 10000},
                 {200, 100000},
                 {1000, 1000000},
                 {5000, 1000000}};
    }

    const int budget_n = 14; // RS(10,4)
    ShapeChecker chk;
    std::vector<CellResult> results;
    std::printf("fig_scale: scanner-path repair at cluster scale%s\n",
                smoke ? " (smoke)" : "");
    for (const Cell &cell : cells) {
        CellResult r = runCell(cell);
        results.push_back(r);
        std::printf("  %5d nodes %8d stripes  %6lld chunks  "
                    "%9lld events  %8.0f ev/s  %5.1f B/stripe  "
                    "rss %6.0f MiB  qscan %lld qskip %lld  "
                    "fv/rr %.1f\n",
                    cell.nodes, cell.stripes, r.chunksRepaired,
                    r.events, r.eventsPerSec, r.bytesPerStripe,
                    r.peakRss / (1024.0 * 1024.0), r.queueScanSteps,
                    r.queueMemoSkips,
                    r.rateRecomputes > 0
                        ? static_cast<double>(r.recomputeFlowVisits) /
                              static_cast<double>(r.rateRecomputes)
                        : 0.0);
        const std::string label = std::to_string(cell.nodes) +
                                  "n/" +
                                  std::to_string(cell.stripes) + "s";
        chk.equals(label + " chunks repaired", r.chunksRepaired,
                   r.expectedChunks);
        chk.equals(label + " unrecoverable", r.unrecoverable, 0);
        chk.positive(label + " events/sec", r.eventsPerSec);
        chk.check(label + " bytes/stripe under budget (" +
                      std::to_string(r.bytesPerStripe) + " vs " +
                      std::to_string(16 * budget_n + 64) + ")",
                  r.bytesPerStripe <= 16.0 * budget_n + 64.0);
    }

    std::FILE *json = std::fopen("BENCH_scale.json", "w");
    if (json) {
        std::fprintf(
            json,
            "{\n"
            "  \"bench\": \"fig_scale\",\n"
            "  \"description\": \"scanner-path repair at cluster "
            "scale: events/sec, peak RSS, and StripeTable "
            "bytes/stripe per (nodes, stripes) cell. The 200-node "
            "cell's low events/sec is max-min-solver-bound, not "
            "queue-bound: recompute_flow_visits/rate_recomputes "
            "(deterministic) peaks there at 120.4 flows touched per "
            "recompute vs 50.4/32.1/6.2 at 50/1000/5000 nodes — at "
            "that (nodes, admission-cap) point concurrent repairs "
            "overlap into one large shared flow component, while 50 "
            "nodes has fewer resources total and 1000+ nodes spread "
            "repairs until they stop overlapping; queue work is "
            "negligible there (queue_scan_steps 37k over 5.8M "
            "events, vs 1.0M scans + 3.9M memo skips at 50 "
            "nodes)\",\n"
            "  \"smoke\": %s,\n"
            "  \"results\": [\n",
            smoke ? "true" : "false");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const CellResult &r = results[i];
            std::fprintf(
                json,
                "    {\"nodes\": %d, \"stripes\": %d,\n"
                "     \"chunks_repaired\": %lld,\n"
                "     \"events\": %lld,\n"
                "     \"queue_scan_steps\": %lld,\n"
                "     \"queue_memo_skips\": %lld,\n"
                "     \"rate_recomputes\": %lld,\n"
                "     \"recompute_flow_visits\": %lld,\n"
                "     \"wall_seconds\": %s,\n"
                "     \"events_per_sec\": %s,\n"
                "     \"sim_repair_seconds\": %s,\n"
                "     \"bytes_per_stripe\": %s,\n"
                "     \"peak_rss_bytes\": %s}%s\n",
                r.cell.nodes, r.cell.stripes, r.chunksRepaired,
                r.events, r.queueScanSteps, r.queueMemoSkips,
                r.rateRecomputes, r.recomputeFlowVisits,
                formatDouble(r.seconds).c_str(),
                formatDouble(r.eventsPerSec).c_str(),
                formatDouble(r.repairTime).c_str(),
                formatDouble(r.bytesPerStripe).c_str(),
                formatDouble(r.peakRss).c_str(),
                i + 1 < results.size() ? "," : "");
        }
        std::fprintf(json,
                     "  ],\n"
                     "  \"consistent\": %s\n"
                     "}\n",
                     chk.failed() ? "false" : "true");
        std::fclose(json);
        std::printf("wrote BENCH_scale.json\n");
    } else {
        std::fprintf(stderr, "cannot write BENCH_scale.json\n");
        return 1;
    }
    return chk.exitCode();
}
