/**
 * @file
 * Microbenchmark for the DAG executor's slice-event machinery: how
 * many per-slice flow events per second the simulator sustains when a
 * chain DAG streams finely sliced chunks hop by hop. Records
 * events/sec into BENCH_runtime.json (each slice crossing one edge is
 * one event: a flow launch, delivery bookkeeping, and the follow-up
 * scheduling that keeps the pipeline full).
 *
 * Exit code: non-zero if any repair fails to complete; the rate is
 * recorded, not asserted (it depends on the machine).
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hh"
#include "cluster/cluster.hh"
#include "repair/dag_bridge.hh"
#include "repair/executor.hh"
#include "repair/plan.hh"
#include "util/format.hh"

namespace {

using namespace chameleon;
using namespace chameleon::bench;

repair::ChunkRepairPlan
chainPlan(NodeId dest, int k)
{
    std::vector<repair::PlanSource> sources;
    for (int i = 0; i < k; ++i) {
        repair::PlanSource src;
        src.node = static_cast<NodeId>(i + 1);
        src.chunk = static_cast<ChunkIndex>(i + 1);
        sources.push_back(src);
    }
    return repair::buildChainPlan(0, 0, dest, sources);
}

} // namespace

int
main(int argc, char **argv)
{
    init(argc, argv);

    const int kHelpers = 4;
    const int slices = opts().smoke ? 64 : 512;
    const int chunks = opts().smoke ? 4 : 64;

    sim::Simulator sim;
    cluster::ClusterConfig cfg;
    cfg.numNodes = 8;
    cfg.numClients = 0;
    cfg.uplinkBw = cfg.downlinkBw = 100.0;
    cfg.diskBw = 1000.0;
    cluster::Cluster cluster(sim, cfg);
    repair::ExecutorConfig ecfg;
    ecfg.chunkSize = 64.0;
    ecfg.sliceSize = 64.0;
    ecfg.slices = slices;
    ecfg.relayOverheadPerMiB = 0.0;
    repair::RepairExecutor exec(cluster, ecfg);

    auto plan = chainPlan(6, kHelpers);
    auto dag = repair::fromTree(plan);

    std::printf("micro_dag: %d chain repairs x %d slices x %d "
                "network hops\n",
                chunks, slices, kHelpers);

    int completed = 0;
    auto start = std::chrono::steady_clock::now();
    for (int c = 0; c < chunks; ++c) {
        exec.launchDag(dag, plan,
                       [&](const repair::ChunkRepairPlan &, SimTime) {
                           ++completed;
                       });
        sim.run();
    }
    auto end = std::chrono::steady_clock::now();
    double seconds = std::chrono::duration<double>(end - start).count();

    // One event per slice per edge: k network hops plus the chain
    // head's local disk hop and the per-slice destination write.
    long long events =
        static_cast<long long>(chunks) * slices * (kHelpers + 2);
    double rate = seconds > 0 ? events / seconds : 0.0;

    bool ok = completed == chunks;
    std::printf("  %lld slice events in %.3f s -> %.0f events/s  "
                "[%s]\n",
                events, seconds, rate, ok ? "ok" : "FAIL");

    std::FILE *json = std::fopen("BENCH_runtime.json", "w");
    if (json) {
        std::fprintf(json,
                     "{\n"
                     "  \"bench\": \"micro_dag\",\n"
                     "  \"chunks\": %d,\n"
                     "  \"slices_per_chunk\": %d,\n"
                     "  \"edges_per_chunk\": %d,\n"
                     "  \"slice_events\": %lld,\n"
                     "  \"seconds\": %s,\n"
                     "  \"events_per_sec\": %s,\n"
                     "  \"completed\": %s\n"
                     "}\n",
                     chunks, slices, kHelpers + 2, events,
                     formatDouble(seconds).c_str(),
                     formatDouble(rate).c_str(),
                     ok ? "true" : "false");
        std::fclose(json);
        std::printf("wrote BENCH_runtime.json\n");
    } else {
        std::fprintf(stderr, "cannot write BENCH_runtime.json\n");
    }
    return ok ? 0 : 1;
}
