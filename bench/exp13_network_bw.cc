/**
 * @file
 * Exp#13 / Figure 24: impact of network bandwidth, swept 1..10 Gb/s
 * with foreground traffic running. Throughput grows with bandwidth,
 * but ChameleonEC's relative improvement declines (paper: 64.4% at
 * 1 Gb/s down to 40.1% at 10 Gb/s) as storage I/O starts to
 * dominate.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using analysis::Algorithm;

    init(argc, argv);
    if (smoke) {
        // Two bandwidth points; throughput must rise with bandwidth.
        auto run_at = [](double gbps) {
            auto cfg = defaultConfig();
            cfg.chunksToRepair = kSmokeChunks;
            cfg.seed = 7;
            cfg.cluster.uplinkBw = gbps * units::Gbps;
            cfg.cluster.downlinkBw = gbps * units::Gbps;
            return runExperiment(Algorithm::kChameleon, cfg);
        };
        ShapeChecker chk;
        auto slow = run_at(1.0);
        auto fast = run_at(5.0);
        chk.positive("1 Gb/s repair throughput MB/s",
                     slow.repairThroughput / 1e6);
        chk.positive("5 Gb/s repair throughput MB/s",
                     fast.repairThroughput / 1e6);
        chk.check("throughput rises with link bandwidth",
                  fast.repairThroughput > slow.repairThroughput);
        return chk.exitCode();
    }

    printHeader("Exp#13 (Fig. 24): impact of network bandwidth",
                "links swept 1..10 Gb/s, YCSB-A foreground");

    for (double gbps : {1.0, 2.5, 5.0, 10.0}) {
        std::printf("%.1f Gb/s links:\n", gbps);
        double cham = 0;
        Summary base;
        for (auto algo : comparisonAlgorithms()) {
            auto cfg = defaultConfig();
            cfg.cluster.uplinkBw = gbps * units::Gbps;
            cfg.cluster.downlinkBw = gbps * units::Gbps;
            auto r = runExperiment(algo, cfg);
            std::printf("  %-16s %7.1f MB/s\n",
                        analysis::algorithmName(algo).c_str(),
                        r.repairThroughput / 1e6);
            if (algo == analysis::Algorithm::kChameleon)
                cham = r.repairThroughput;
            else
                base.add(r.repairThroughput);
        }
        std::printf("  ChameleonEC vs baseline mean: %+.1f%%\n",
                    (cham / base.mean - 1) * 100.0);
    }
    std::printf("\nShape checks: absolute throughput rises with "
                "bandwidth; the relative improvement falls as disks "
                "take over as the bottleneck.\n");
    return 0;
}
