/**
 * @file
 * Exp#13 / Figure 24: impact of network bandwidth, swept 1..10 Gb/s
 * with foreground traffic running. Throughput grows with bandwidth,
 * but ChameleonEC's relative improvement declines (paper: 64.4% at
 * 1 Gb/s down to 40.1% at 10 Gb/s) as storage I/O starts to
 * dominate.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // Two bandwidth points; throughput must rise with bandwidth.
        auto bw_cell = [](double gbps) {
            char label[32];
            std::snprintf(label, sizeof(label), "%.0f Gb/s", gbps);
            auto cell = makeCell(
                label, Algorithm::kChameleon, -1,
                [gbps](runtime::ExperimentConfig &cfg) {
                    cfg.chunksToRepair = kSmokeChunks;
                    cfg.seed = 7;
                    cfg.cluster.uplinkBw = gbps * units::Gbps;
                    cfg.cluster.downlinkBw = gbps * units::Gbps;
                });
            cell.deriveSeed = false;
            return cell;
        };
        auto results = runCells({bw_cell(1.0), bw_cell(5.0)});
        const auto &slow = results.at(0);
        const auto &fast = results.at(1);
        ShapeChecker chk;
        chk.positive("1 Gb/s repair throughput MB/s",
                     slow.repairThroughput / 1e6);
        chk.positive("5 Gb/s repair throughput MB/s",
                     fast.repairThroughput / 1e6);
        chk.check("throughput rises with link bandwidth",
                  fast.repairThroughput > slow.repairThroughput);
        return chk.exitCode();
    }

    // One group per link rate (shared seedIndex per group).
    const std::vector<double> rates = {1.0, 2.5, 5.0, 10.0};
    std::vector<runtime::SweepCell> cells;
    for (std::size_t g = 0; g < rates.size(); ++g) {
        double gbps = rates[g];
        for (auto algo : comparisonAlgorithms()) {
            char label[48];
            std::snprintf(label, sizeof(label), "%.1f Gb/s / %s",
                          gbps,
                          runtime::algorithmName(algo).c_str());
            cells.push_back(makeCell(
                label, algo, static_cast<int>(g),
                [gbps](runtime::ExperimentConfig &cfg) {
                    cfg.cluster.uplinkBw = gbps * units::Gbps;
                    cfg.cluster.downlinkBw = gbps * units::Gbps;
                }));
        }
    }

    printHeader("Exp#13 (Fig. 24): impact of network bandwidth",
                "links swept 1..10 Gb/s, YCSB-A foreground");

    double cham = 0;
    Summary base;
    std::size_t per_group = comparisonAlgorithms().size();
    runCells(cells, [&](std::size_t i,
                        const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        if (i % per_group == 0) {
            std::printf("%.1f Gb/s links:\n", rates[i / per_group]);
            cham = 0;
            base = Summary();
        }
        std::printf("  %-16s %7.1f MB/s\n",
                    runtime::algorithmName(cell.algorithm).c_str(),
                    r.repairThroughput / 1e6);
        if (cell.algorithm == Algorithm::kChameleon)
            cham = r.repairThroughput;
        else
            base.add(r.repairThroughput);
        if (i % per_group == per_group - 1)
            std::printf("  ChameleonEC vs baseline mean: %+.1f%%\n",
                        (cham / base.mean - 1) * 100.0);
    });
    std::printf("\nShape checks: absolute throughput rises with "
                "bandwidth; the relative improvement falls as disks "
                "take over as the bottleneck.\n");
    return 0;
}
