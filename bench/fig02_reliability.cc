/**
 * @file
 * Figure 2: data-loss probability during single-node repair as a
 * function of repair throughput (k = 10, m = 4, 96 TB per node,
 * 10-year expected node lifetime). Analytical; no simulation — but
 * it still parses the shared bench flags so CTest can pass the same
 * --smoke/--jobs arguments to every bench binary.
 */

#include <cstdio>
#include <initializer_list>

#include "analysis/reliability.hh"
#include "bench_common.hh"
#include "util/types.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    bench::init(argc, argv);
    analysis::ReliabilityModel model; // paper defaults

    // --smoke: the analytical model is already instant; just check
    // the monotone trend that motivates the paper and exit.
    if (bench::opts().smoke) {
        double prev = 1.0;
        bool monotone = true, bounded = true;
        for (double mbps : {10.0, 100.0, 1000.0}) {
            double p = model.dataLossProbability(mbps * 1e6);
            monotone = monotone && p < prev;
            bounded = bounded && p > 0.0 && p < 1.0;
            prev = p;
        }
        std::printf("  [%s] loss probability falls with repair "
                    "throughput\n",
                    monotone ? "ok" : "FAIL");
        std::printf("  [%s] probabilities in (0,1)\n",
                    bounded ? "ok" : "FAIL");
        return monotone && bounded ? 0 : 1;
    }

    std::printf("Figure 2: data loss probability vs repair "
                "throughput (RS(%d,%d), %.0f TB/node, theta=%g years)\n",
                model.k, model.m, model.nodeBytes / 1e12,
                model.thetaYears);
    std::printf("%-24s %-18s %s\n", "repair throughput",
                "repair duration", "Pr[data loss]");
    for (double mbps : {10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                        1000.0, 2000.0}) {
        Rate tput = mbps * 1e6;
        double tau = model.nodeBytes / tput;
        std::printf("%8.0f MB/s          %8.1f hours     %.3e\n",
                    mbps, tau / 3600.0,
                    model.dataLossProbability(tput));
    }
    std::printf("\nTrend check: higher repair throughput => lower "
                "loss probability (the paper's motivation for fast "
                "repair).\n");
    return 0;
}
