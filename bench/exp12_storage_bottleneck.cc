/**
 * @file
 * Exp#12 / Figure 23: storage-bottlenecked scenarios. Disk bandwidth
 * sweeps 250..500 MB/s while the network stays fixed; ChameleonEC-IO
 * (dispatch keyed on storage residual bandwidth) overtakes plain
 * ChameleonEC as disks tighten (paper: +35.7% at 250 MB/s), and the
 * overall advantage over CR shrinks (43.8% -> 15.5%).
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using analysis::Algorithm;

    init(argc, argv);
    if (smoke) {
        // Tight disks, plentiful network: the IO-keyed variant must
        // still complete the repair.
        return runSmoke(
            "exp12_storage_bottleneck",
            {Algorithm::kChameleon, Algorithm::kChameleonIo},
            [](analysis::ExperimentConfig &cfg) {
                cfg.cluster.uplinkBw = 10 * units::Gbps;
                cfg.cluster.downlinkBw = 10 * units::Gbps;
                cfg.cluster.diskBw = 125 * units::MBps;
            });
    }

    printHeader("Exp#12 (Fig. 23): storage-bottlenecked scenarios",
                "disk bandwidth swept 125..500 MB/s, links fixed");

    for (double disk_mbps : {125.0, 250.0, 500.0}) {
        std::printf("disk %.0f MB/s:\n", disk_mbps);
        double cham = 0, cham_io = 0, cr = 0;
        for (auto algo : {Algorithm::kCr, Algorithm::kChameleon,
                          Algorithm::kChameleonIo}) {
            auto cfg = defaultConfig();
            // The paper's storage-bottleneck premise: network far
            // above disk (their 10 Gb/s NICs vs <= 500 MB/s disks).
            cfg.cluster.uplinkBw = 10 * units::Gbps;
            cfg.cluster.downlinkBw = 10 * units::Gbps;
            cfg.cluster.diskBw = disk_mbps * units::MBps;
            auto r = runExperiment(algo, cfg);
            std::printf("  %-16s %7.1f MB/s\n",
                        analysis::algorithmName(algo).c_str(),
                        r.repairThroughput / 1e6);
            if (algo == Algorithm::kChameleon)
                cham = r.repairThroughput;
            if (algo == Algorithm::kChameleonIo)
                cham_io = r.repairThroughput;
            if (algo == Algorithm::kCr)
                cr = r.repairThroughput;
        }
        std::printf("  Chameleon vs CR %+.1f%%; Chameleon-IO vs "
                    "Chameleon %+.1f%%\n",
                    (cham / cr - 1) * 100.0,
                    (cham_io / cham - 1) * 100.0);
    }
    std::printf("\nShape checks: ChameleonEC-IO beats plain "
                "ChameleonEC under stringent storage bandwidth "
                "(paper: +35.7%% at the tightest disks) and gives "
                "the edge back when disks are plentiful. Note: in "
                "our substrate ChameleonEC's advantage over CR "
                "*grows* as disks tighten (balance matters more), "
                "whereas the paper reports it shrinking — see "
                "EXPERIMENTS.md.\n");
    return 0;
}
