/**
 * @file
 * Exp#12 / Figure 23: storage-bottlenecked scenarios. Disk bandwidth
 * sweeps 250..500 MB/s while the network stays fixed; ChameleonEC-IO
 * (dispatch keyed on storage residual bandwidth) overtakes plain
 * ChameleonEC as disks tighten (paper: +35.7% at 250 MB/s), and the
 * overall advantage over CR shrinks (43.8% -> 15.5%).
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // Tight disks, plentiful network: the IO-keyed variant must
        // still complete the repair.
        return runSmoke(
            "exp12_storage_bottleneck",
            {Algorithm::kChameleon, Algorithm::kChameleonIo},
            [](runtime::ExperimentConfig &cfg) {
                cfg.cluster.uplinkBw = 10 * units::Gbps;
                cfg.cluster.downlinkBw = 10 * units::Gbps;
                cfg.cluster.diskBw = 125 * units::MBps;
            });
    }

    // One group per disk rate (shared seedIndex per group).
    const std::vector<double> disks = {125.0, 250.0, 500.0};
    const std::vector<Algorithm> algos = {
        Algorithm::kCr, Algorithm::kChameleon,
        Algorithm::kChameleonIo};
    std::vector<runtime::SweepCell> cells;
    for (std::size_t g = 0; g < disks.size(); ++g) {
        double disk_mbps = disks[g];
        for (auto algo : algos) {
            char label[48];
            std::snprintf(label, sizeof(label), "disk %.0f / %s",
                          disk_mbps,
                          runtime::algorithmName(algo).c_str());
            cells.push_back(makeCell(
                label, algo, static_cast<int>(g),
                [disk_mbps](runtime::ExperimentConfig &cfg) {
                    // The paper's storage-bottleneck premise:
                    // network far above disk (their 10 Gb/s NICs vs
                    // <= 500 MB/s disks).
                    cfg.cluster.uplinkBw = 10 * units::Gbps;
                    cfg.cluster.downlinkBw = 10 * units::Gbps;
                    cfg.cluster.diskBw = disk_mbps * units::MBps;
                }));
        }
    }

    printHeader("Exp#12 (Fig. 23): storage-bottlenecked scenarios",
                "disk bandwidth swept 125..500 MB/s, links fixed");

    double cham = 0, cham_io = 0, cr = 0;
    runCells(cells, [&](std::size_t i,
                        const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        if (i % algos.size() == 0) {
            std::printf("disk %.0f MB/s:\n", disks[i / algos.size()]);
            cham = cham_io = cr = 0;
        }
        std::printf("  %-16s %7.1f MB/s\n",
                    runtime::algorithmName(cell.algorithm).c_str(),
                    r.repairThroughput / 1e6);
        if (cell.algorithm == Algorithm::kChameleon)
            cham = r.repairThroughput;
        if (cell.algorithm == Algorithm::kChameleonIo)
            cham_io = r.repairThroughput;
        if (cell.algorithm == Algorithm::kCr)
            cr = r.repairThroughput;
        if (i % algos.size() == algos.size() - 1)
            std::printf("  Chameleon vs CR %+.1f%%; Chameleon-IO vs "
                        "Chameleon %+.1f%%\n",
                        (cham / cr - 1) * 100.0,
                        (cham_io / cham - 1) * 100.0);
    });
    std::printf("\nShape checks: ChameleonEC-IO beats plain "
                "ChameleonEC under stringent storage bandwidth "
                "(paper: +35.7%% at the tightest disks) and gives "
                "the edge back when disks are plentiful. Note: in "
                "our substrate ChameleonEC's advantage over CR "
                "*grows* as disks tighten (balance matters more), "
                "whereas the paper reports it shrinking — see "
                "EXPERIMENTS.md.\n");
    return 0;
}
