/**
 * @file
 * Microbenchmark for the simulator core: events/sec and flow-churn
 * throughput of the incremental max-min solver versus the reference
 * from-scratch solver (CHAMELEON_SIM_REFERENCE_SOLVER semantics) on
 * the workloads that dominate ChameleonEC runs — raw flow churn,
 * idle repair chains, slice-pipelined DAG repair at S=64, and a
 * YCSB-A foreground mix with concurrent repairs. Each cell runs in
 * both solver modes on identical scripts; the executed-event counts
 * must match exactly (the solvers are byte-equivalent), and the
 * wall-clock ratio is the recorded speedup. Results go to
 * BENCH_sim.json, the sim-layer analogue of BENCH_codec.json.
 *
 * The churn cell additionally records `sim.rate_recompute_flow_visits`
 * per operation at two live-flow scales: the incremental solver's
 * visits/op must not grow with the number of live flows in other
 * components (the sublinearity acceptance metric).
 *
 * Exit code: non-zero if any cell fails its consistency checks; the
 * rates are recorded, not asserted (they depend on the machine).
 */

#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "cluster/cluster.hh"
#include "repair/dag_bridge.hh"
#include "repair/executor.hh"
#include "repair/plan.hh"
#include "sim/flow_network.hh"
#include "sim/simulator.hh"
#include "telemetry/telemetry.hh"
#include "traffic/foreground_driver.hh"
#include "traffic/trace_profile.hh"
#include "util/format.hh"
#include "util/rng.hh"

namespace {

using namespace chameleon;
using namespace chameleon::bench;

struct CellResult
{
    std::string name;
    long long events = 0;
    double seconds = 0.0;
    double eventsPerSec = 0.0;
    bool ok = true;
};

double
wallSeconds(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Raw flow churn on disjoint repair pairs: `pairs` two-link
 * components each carrying 4 long-lived repair flows, while short
 * foreground flows start and complete on one component. Returns
 * events/sec and (via out-param) solver flow visits per operation.
 */
CellResult
runChurn(bool reference, int pairs, int ops, double *visits_per_op)
{
    sim::Simulator sim;
    sim::FlowNetwork net(sim);
    net.setReferenceSolver(reference);
    auto &visits = telemetry::metrics().counter(
        "sim.rate_recompute_flow_visits");

    std::vector<sim::ResourceId> up(pairs), down(pairs);
    for (int p = 0; p < pairs; ++p) {
        up[p] = net.addResource("up" + std::to_string(p), 1e9);
        down[p] = net.addResource("down" + std::to_string(p), 1e9);
    }
    for (int p = 0; p < pairs; ++p)
        for (int f = 0; f < 4; ++f)
            net.startFlow({up[p], down[p]}, 1e18,
                          sim::FlowTag::kRepair, nullptr);

    const int64_t visitsBefore = visits.value.load();
    int completed = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < ops; ++i) {
        net.startFlow({up[0], down[0]}, 1e6,
                      sim::FlowTag::kForeground,
                      [&completed] { ++completed; });
        while (completed <= i)
            if (!sim.step())
                break;
    }
    const double seconds = wallSeconds(start);
    if (visits_per_op)
        *visits_per_op =
            static_cast<double>(visits.value.load() - visitsBefore) /
            ops;

    CellResult r;
    r.name = "churn";
    r.events = static_cast<long long>(sim.eventsExecuted());
    r.seconds = seconds;
    r.eventsPerSec = seconds > 0 ? 2.0 * ops / seconds : 0.0;
    r.ok = completed == ops;
    return r;
}

/** Idle repair chains: sequential chain repairs, one slice per
 * chunk, no foreground. */
CellResult
runChains(bool reference, int chunks)
{
    sim::Simulator sim;
    cluster::ClusterConfig cfg;
    cfg.numNodes = 8;
    cfg.numClients = 0;
    cfg.uplinkBw = cfg.downlinkBw = 100.0;
    cfg.diskBw = 1000.0;
    cluster::Cluster cluster(sim, cfg);
    cluster.network().setReferenceSolver(reference);
    repair::ExecutorConfig ecfg;
    ecfg.chunkSize = 64.0;
    ecfg.sliceSize = 64.0;
    ecfg.slices = 1;
    ecfg.relayOverheadPerMiB = 0.0;
    repair::RepairExecutor exec(cluster, ecfg);

    std::vector<repair::PlanSource> sources;
    for (int i = 0; i < 4; ++i) {
        repair::PlanSource src;
        src.node = static_cast<NodeId>(i + 1);
        src.chunk = static_cast<ChunkIndex>(i + 1);
        sources.push_back(src);
    }
    const auto plan = repair::buildChainPlan(0, 0, 6, sources);

    int completed = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int c = 0; c < chunks; ++c) {
        exec.launch(plan,
                    [&](const repair::ChunkRepairPlan &, SimTime) {
                        ++completed;
                    });
        sim.run();
    }
    const double seconds = wallSeconds(start);

    CellResult r;
    r.name = "chains";
    r.events = static_cast<long long>(sim.eventsExecuted());
    r.seconds = seconds;
    r.eventsPerSec =
        seconds > 0 ? static_cast<double>(r.events) / seconds : 0.0;
    r.ok = completed == chunks;
    return r;
}

/**
 * Slice-pipelined DAG repair at S=64 (PR 6's hot path): `lanes`
 * concurrent chain repairs on disjoint node groups of a large
 * cluster, the regime where slice pipelining multiplies live-flow
 * counts and the from-scratch solver pays for the whole cluster on
 * every slice event.
 */
CellResult
runDag64(bool reference, int lanes, int rounds)
{
    sim::Simulator sim;
    cluster::ClusterConfig cfg;
    cfg.numNodes = lanes * 6;
    cfg.numClients = 0;
    cfg.uplinkBw = cfg.downlinkBw = 100.0;
    cfg.diskBw = 1000.0;
    cluster::Cluster cluster(sim, cfg);
    cluster.network().setReferenceSolver(reference);
    repair::ExecutorConfig ecfg;
    ecfg.chunkSize = 64.0;
    ecfg.sliceSize = 1.0;
    ecfg.slices = 64;
    ecfg.relayOverheadPerMiB = 0.0;
    repair::RepairExecutor exec(cluster, ecfg);

    int completed = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int round = 0; round < rounds; ++round) {
        for (int lane = 0; lane < lanes; ++lane) {
            const NodeId base = static_cast<NodeId>(lane * 6);
            std::vector<repair::PlanSource> sources;
            for (int i = 0; i < 4; ++i) {
                repair::PlanSource src;
                src.node = static_cast<NodeId>(base + i + 1);
                src.chunk = static_cast<ChunkIndex>(i + 1);
                sources.push_back(src);
            }
            const auto plan = repair::buildChainPlan(
                lane, 0, static_cast<NodeId>(base + 5), sources);
            const auto dag = repair::fromTree(plan);
            exec.launchDag(
                dag, plan,
                [&](const repair::ChunkRepairPlan &, SimTime) {
                    ++completed;
                });
        }
        sim.run();
    }
    const double seconds = wallSeconds(start);

    CellResult r;
    r.name = "dag64";
    r.events = static_cast<long long>(sim.eventsExecuted());
    r.seconds = seconds;
    r.eventsPerSec =
        seconds > 0 ? static_cast<double>(r.events) / seconds : 0.0;
    r.ok = completed == lanes * rounds;
    return r;
}

/**
 * YCSB-A foreground mix with concurrent chain repairs on a large
 * cluster: the experiment-shaped workload. Client links couple the
 * nodes currently serving requests into one component, but the rest
 * of the cluster stays out of each re-solve; the reference solver
 * pays for every node on every request start/finish.
 */
CellResult
runYcsb(bool reference, int nodes, uint64_t requests_per_client)
{
    sim::Simulator sim;
    cluster::ClusterConfig cfg; // paper-shaped, scaled up
    cfg.numNodes = nodes;
    cluster::Cluster cluster(sim, cfg);
    cluster.network().setReferenceSolver(reference);
    traffic::ForegroundDriver driver(cluster, traffic::ycsbA(),
                                     Rng(42), requests_per_client);
    repair::ExecutorConfig ecfg;
    repair::RepairExecutor exec(cluster, ecfg);

    const int repairs = nodes / 6;
    int completed = 0;
    const auto start = std::chrono::steady_clock::now();
    driver.start();
    for (int c = 0; c < repairs; ++c) {
        const NodeId base = static_cast<NodeId>(c * 6);
        std::vector<repair::PlanSource> sources;
        for (int i = 0; i < 4; ++i) {
            repair::PlanSource src;
            src.node = static_cast<NodeId>(base + i + 1);
            src.chunk = static_cast<ChunkIndex>(i + 1);
            sources.push_back(src);
        }
        const auto plan = repair::buildChainPlan(
            c, 0, static_cast<NodeId>(base + 5), sources);
        exec.launch(plan,
                    [&](const repair::ChunkRepairPlan &, SimTime) {
                        ++completed;
                    });
    }
    sim.run();
    driver.stop();
    sim.run();
    const double seconds = wallSeconds(start);

    CellResult r;
    r.name = "ycsb";
    r.events = static_cast<long long>(sim.eventsExecuted());
    r.seconds = seconds;
    r.eventsPerSec =
        seconds > 0 ? static_cast<double>(r.events) / seconds : 0.0;
    r.ok = completed == repairs && driver.finished();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    init(argc, argv);

    const bool smoke = opts().smoke;
    const int churnPairs = smoke ? 16 : 64;
    const int churnOps = smoke ? 500 : 20000;
    const int chainChunks = smoke ? 8 : 256;
    const int dagLanes = smoke ? 4 : 16;
    const int dagRounds = smoke ? 1 : 4;
    const int ycsbNodes = smoke ? 24 : 96;
    const uint64_t ycsbRequests = smoke ? 50 : 1500;

    struct Pair
    {
        CellResult inc;
        CellResult ref;
        double visitsPerOpInc = 0.0;
        double visitsPerOpRef = 0.0;
    };
    std::vector<Pair> cells;

    {
        Pair p;
        p.inc = runChurn(false, churnPairs, churnOps,
                         &p.visitsPerOpInc);
        p.ref = runChurn(true, churnPairs, churnOps,
                         &p.visitsPerOpRef);
        cells.push_back(p);
    }
    {
        Pair p;
        p.inc = runChains(false, chainChunks);
        p.ref = runChains(true, chainChunks);
        cells.push_back(p);
    }
    {
        Pair p;
        p.inc = runDag64(false, dagLanes, dagRounds);
        p.ref = runDag64(true, dagLanes, dagRounds);
        cells.push_back(p);
    }
    {
        Pair p;
        p.inc = runYcsb(false, ycsbNodes, ycsbRequests);
        p.ref = runYcsb(true, ycsbNodes, ycsbRequests);
        cells.push_back(p);
    }

    // Sublinearity evidence: the same churn at 4x the live-flow
    // count must not grow the incremental solver's visits/op.
    double visitsSmall = 0.0, visitsLarge = 0.0;
    runChurn(false, churnPairs, churnOps / 2, &visitsSmall);
    runChurn(false, churnPairs * 4, churnOps / 2, &visitsLarge);

    bool ok = true;
    std::printf("micro_sim: incremental vs reference solver\n");
    for (const auto &p : cells) {
        const bool consistent =
            p.inc.ok && p.ref.ok && p.inc.events == p.ref.events;
        ok = ok && consistent;
        const double speedup = p.ref.eventsPerSec > 0
                                   ? p.inc.eventsPerSec /
                                         p.ref.eventsPerSec
                                   : 0.0;
        std::printf("  %-6s  %9lld events  inc %12.0f ev/s  "
                    "ref %12.0f ev/s  %5.2fx  [%s]\n",
                    p.inc.name.c_str(), p.inc.events,
                    p.inc.eventsPerSec, p.ref.eventsPerSec, speedup,
                    consistent ? "ok" : "FAIL");
    }
    const double visitsGrowth =
        visitsSmall > 0 ? visitsLarge / visitsSmall : 0.0;
    std::printf("  churn visits/op: %.1f at 1x flows, %.1f at 4x "
                "flows (growth %.2fx; reference %.1f)\n",
                visitsSmall, visitsLarge, visitsGrowth,
                cells[0].visitsPerOpRef);
    // Dirty-set visits must not scale with unrelated live flows.
    ok = ok && visitsGrowth < 2.0;

    std::FILE *json = std::fopen("BENCH_sim.json", "w");
    if (json) {
        std::fprintf(
            json,
            "{\n"
            "  \"bench\": \"micro_sim\",\n"
            "  \"description\": \"simulator core events/sec, "
            "incremental vs reference (from-scratch) max-min "
            "solver on identical scripts\",\n"
            "  \"smoke\": %s,\n"
            "  \"results\": [\n",
            smoke ? "true" : "false");
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const auto &p = cells[i];
            const double speedup = p.ref.eventsPerSec > 0
                                       ? p.inc.eventsPerSec /
                                             p.ref.eventsPerSec
                                       : 0.0;
            std::fprintf(
                json,
                "    {\"cell\": \"%s\", \"events\": %lld,\n"
                "     \"incremental_events_per_sec\": %s,\n"
                "     \"reference_events_per_sec\": %s,\n"
                "     \"speedup\": %s}%s\n",
                p.inc.name.c_str(), p.inc.events,
                formatDouble(p.inc.eventsPerSec).c_str(),
                formatDouble(p.ref.eventsPerSec).c_str(),
                formatDouble(speedup).c_str(),
                i + 1 < cells.size() ? "," : "");
        }
        std::fprintf(
            json,
            "  ],\n"
            "  \"churn_visits_per_op\": {\n"
            "    \"incremental_1x_flows\": %s,\n"
            "    \"incremental_4x_flows\": %s,\n"
            "    \"growth\": %s,\n"
            "    \"reference_1x_flows\": %s\n"
            "  },\n"
            "  \"consistent\": %s\n"
            "}\n",
            formatDouble(visitsSmall).c_str(),
            formatDouble(visitsLarge).c_str(),
            formatDouble(visitsGrowth).c_str(),
            formatDouble(cells[0].visitsPerOpRef).c_str(),
            ok ? "true" : "false");
        std::fclose(json);
        std::printf("wrote BENCH_sim.json\n");
    } else {
        std::fprintf(stderr, "cannot write BENCH_sim.json\n");
        ok = false;
    }
    return ok ? 0 : 1;
}
