/**
 * @file
 * Exp#9 / Figure 20: generality across erasure codes — RS(8,3)
 * (Yahoo COS), RS(10,4) (Facebook f4), LRC(8,2,2), LRC(10,2,2), and
 * Butterfly(4,2). The paper reports gains of 12.2-35.7% over CR for
 * RS/LRC; for Butterfly only ~4.9% (no elastic plan possible, only
 * destination choice), and LRCs repairing much faster than RS at
 * equal k (local groups read fewer chunks).
 */

#include <cstdio>

#include "bench_common.hh"
#include "ec/factory.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // One cell per code family (RS, LRC, Butterfly).
        int failures = 0;
        for (auto code :
             {ec::makeRs(6, 3), ec::makeLrc(8, 2, 2),
              ec::makeButterfly()}) {
            failures += runSmoke(
                "exp09_generality (" + code->name() + ")",
                {Algorithm::kChameleon},
                [code](runtime::ExperimentConfig &cfg) {
                    cfg.code = code;
                });
        }
        return failures ? 1 : 0;
    }

    struct CodeCase
    {
        std::shared_ptr<const ec::ErasureCode> code;
        bool full_comparison; // butterfly runs CR/Chameleon only
    };
    std::vector<CodeCase> cases = {
        {ec::makeRs(8, 3), true},   {ec::makeRs(10, 4), true},
        {ec::makeLrc(8, 2, 2), true}, {ec::makeLrc(10, 2, 2), true},
        {ec::makeButterfly(), false},
    };

    // One group per code; groups are ragged (butterfly has two
    // cells), so track group boundaries by cell index.
    std::vector<runtime::SweepCell> cells;
    std::vector<std::size_t> group_of_cell;
    std::vector<std::size_t> group_end; // last cell index per group
    for (std::size_t g = 0; g < cases.size(); ++g) {
        const auto &cc = cases[g];
        auto algos = cc.full_comparison
                         ? comparisonAlgorithms()
                         : std::vector<Algorithm>{
                               Algorithm::kCr, Algorithm::kChameleon};
        for (auto algo : algos) {
            cells.push_back(makeCell(
                cc.code->name() + " / " +
                    runtime::algorithmName(algo),
                algo, static_cast<int>(g),
                [&cc](runtime::ExperimentConfig &cfg) {
                    cfg.code = cc.code;
                }));
            group_of_cell.push_back(g);
        }
        group_end.push_back(cells.size() - 1);
    }

    printHeader("Exp#9 (Fig. 20): generality across erasure codes",
                "YCSB-A foreground");

    double cham = 0, cr = 0;
    runCells(cells, [&](std::size_t i,
                        const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        std::size_t g = group_of_cell[i];
        if (i == 0 || group_of_cell[i - 1] != g) {
            std::printf("%s:\n", cases[g].code->name().c_str());
            cham = cr = 0;
        }
        printRow(runtime::algorithmName(cell.algorithm),
                 r.repairThroughput / 1e6, r.p99LatencyMs);
        if (cell.algorithm == Algorithm::kChameleon)
            cham = r.repairThroughput;
        if (cell.algorithm == Algorithm::kCr)
            cr = r.repairThroughput;
        if (i == group_end[g])
            std::printf("  ChameleonEC vs CR: %+.1f%%\n",
                        (cham / cr - 1) * 100.0);
    });
    std::printf("\nShape checks: LRC repair throughput beats same-k "
                "RS (reads k/l chunks); Butterfly gains only "
                "slightly (paper: +4.9%%) since relays cannot "
                "combine sub-chunks.\n");
    return 0;
}
