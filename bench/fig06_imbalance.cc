/**
 * @file
 * Figure 6 (root cause R2): most-loaded (ML) vs least-loaded (LL)
 * uplink and downlink utilization (repair + foreground bandwidth)
 * for each repair algorithm. The paper finds e.g. ECPipe's ML uplink
 * carries 110.5% more than its LL uplink.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // The per-link load report must cover every node and show
        // repair traffic on at least one surviving uplink.
        return runSmoke(
            "fig06_imbalance", {Algorithm::kCr},
            {},
            [](ShapeChecker &chk, Algorithm,
               const runtime::ExperimentResult &r) {
                double max_repair = 0;
                for (const auto &l : r.uplinks)
                    max_repair = std::max(max_repair, l.repairMean);
                chk.positive("peak uplink repair bandwidth Gb/s",
                             max_repair * 8 / 1e9);
                chk.check("per-node link loads reported",
                          !r.uplinks.empty() &&
                              r.uplinks.size() == r.downlinks.size());
            });
    }

    // One workload, every algorithm (shared seedIndex).
    std::vector<runtime::SweepCell> cells;
    for (auto algo : comparisonAlgorithms())
        cells.push_back(
            makeCell(runtime::algorithmName(algo), algo, 0));

    printHeader("Figure 6: ML vs LL link utilization during repair",
                "RS(10,4), YCSB-A, per-node repair+foreground "
                "bandwidth over the repair window");

    runCells(cells, [&](std::size_t, const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        auto report = [&](const char *dir,
                          const std::vector<runtime::LinkLoad> &all) {
            // The failed node carries no traffic; exclude it.
            std::vector<runtime::LinkLoad> links(all.begin() + 1,
                                                 all.end());
            auto ml = *std::max_element(
                links.begin(), links.end(),
                [](const auto &a, const auto &b) {
                    return a.total() < b.total();
                });
            auto ll = *std::min_element(
                links.begin(), links.end(),
                [](const auto &a, const auto &b) {
                    return a.total() < b.total();
                });
            std::printf("  %-12s %s ML: %6.2f Gb/s (repair %5.2f + "
                        "fg %5.2f) | LL: %6.2f Gb/s | ML/LL-1 = "
                        "%5.1f%%\n",
                        cell.label.c_str(), dir,
                        ml.total() * 8 / 1e9, ml.repairMean * 8 / 1e9,
                        ml.foregroundMean * 8 / 1e9,
                        ll.total() * 8 / 1e9,
                        ll.total() > 0
                            ? (ml.total() / ll.total() - 1.0) * 100.0
                            : 0.0);
        };
        report("up  ", r.uplinks);
        report("down", r.downlinks);
    });
    std::printf("\nShape check: utilization varies strongly across "
                "links for the baselines; ChameleonEC's "
                "bandwidth-aware dispatch narrows the ML/LL gap.\n");
    return 0;
}
