/**
 * @file
 * Exp#7 / Figure 18: repair with no foreground traffic, with the
 * link bandwidth throttled (wondershaper-style) from 1 to 10 Gb/s.
 * The paper reports ChameleonEC still ahead by 25.0-41.3% (35.1% on
 * average) because bandwidth-aware dispatch balances multi-chunk
 * repair even without interference.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using analysis::Algorithm;

    init(argc, argv);
    if (smoke) {
        // Foreground disabled: latency metrics must stay zero.
        return runSmoke(
            "exp07_no_foreground",
            {Algorithm::kCr, Algorithm::kChameleon},
            [](analysis::ExperimentConfig &cfg) {
                cfg.trace.reset();
            },
            [](ShapeChecker &chk, Algorithm,
               const analysis::ExperimentResult &r) {
                chk.check("no foreground latency recorded",
                          r.p99LatencyMs == 0.0);
            });
    }

    printHeader("Exp#7 (Fig. 18): no foreground traffic",
                "link bandwidth swept 1..10 Gb/s, no clients");

    for (double gbps : {1.0, 2.5, 5.0, 10.0}) {
        std::printf("%.1f Gb/s links:\n", gbps);
        double cham = 0, best_base = 0;
        for (auto algo : comparisonAlgorithms()) {
            auto cfg = defaultConfig();
            cfg.trace.reset();
            cfg.cluster.uplinkBw = gbps * units::Gbps;
            cfg.cluster.downlinkBw = gbps * units::Gbps;
            auto r = runExperiment(algo, cfg);
            std::printf("  %-16s %7.1f MB/s\n",
                        analysis::algorithmName(algo).c_str(),
                        r.repairThroughput / 1e6);
            if (algo == analysis::Algorithm::kChameleon)
                cham = r.repairThroughput;
            else
                best_base = std::max(best_base, r.repairThroughput);
        }
        std::printf("  ChameleonEC vs best baseline: %+.1f%%\n",
                    (cham / best_base - 1) * 100.0);
    }
    std::printf("\nShape check: throughput grows with bandwidth; "
                "ChameleonEC keeps an edge even without foreground "
                "traffic (paper: +25-41%%).\n");
    return 0;
}
