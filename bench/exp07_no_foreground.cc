/**
 * @file
 * Exp#7 / Figure 18: repair with no foreground traffic, with the
 * link bandwidth throttled (wondershaper-style) from 1 to 10 Gb/s.
 * The paper reports ChameleonEC still ahead by 25.0-41.3% (35.1% on
 * average) because bandwidth-aware dispatch balances multi-chunk
 * repair even without interference.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // Foreground disabled: latency metrics must stay zero.
        return runSmoke(
            "exp07_no_foreground",
            {Algorithm::kCr, Algorithm::kChameleon},
            [](runtime::ExperimentConfig &cfg) {
                cfg.trace.reset();
            },
            [](ShapeChecker &chk, Algorithm,
               const runtime::ExperimentResult &r) {
                chk.check("no foreground latency recorded",
                          r.p99LatencyMs == 0.0);
            });
    }

    // One bandwidth group per link rate (shared seedIndex per group).
    std::vector<double> rates = {1.0, 2.5, 5.0, 10.0};
    std::vector<runtime::SweepCell> cells;
    for (std::size_t g = 0; g < rates.size(); ++g) {
        double gbps = rates[g];
        for (auto algo : comparisonAlgorithms()) {
            char label[48];
            std::snprintf(label, sizeof(label), "%.1f Gb/s / %s",
                          gbps,
                          runtime::algorithmName(algo).c_str());
            cells.push_back(makeCell(
                label, algo, static_cast<int>(g),
                [gbps](runtime::ExperimentConfig &cfg) {
                    cfg.trace.reset();
                    cfg.cluster.uplinkBw = gbps * units::Gbps;
                    cfg.cluster.downlinkBw = gbps * units::Gbps;
                }));
        }
    }

    printHeader("Exp#7 (Fig. 18): no foreground traffic",
                "link bandwidth swept 1..10 Gb/s, no clients");

    double cham = 0, best_base = 0;
    std::size_t per_group = comparisonAlgorithms().size();
    runCells(cells, [&](std::size_t i,
                        const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        if (i % per_group == 0) {
            std::printf("%.1f Gb/s links:\n", rates[i / per_group]);
            cham = best_base = 0;
        }
        std::printf("  %-16s %7.1f MB/s\n",
                    runtime::algorithmName(cell.algorithm).c_str(),
                    r.repairThroughput / 1e6);
        if (cell.algorithm == Algorithm::kChameleon)
            cham = r.repairThroughput;
        else
            best_base = std::max(best_base, r.repairThroughput);
        if (i % per_group == per_group - 1)
            std::printf("  ChameleonEC vs best baseline: %+.1f%%\n",
                        (cham / best_base - 1) * 100.0);
    });
    std::printf("\nShape check: throughput grows with bandwidth; "
                "ChameleonEC keeps an edge even without foreground "
                "traffic (paper: +25-41%%).\n");
    return 0;
}
