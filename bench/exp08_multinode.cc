/**
 * @file
 * Exp#8 / Figure 19: multi-node repair with 1..3 failed nodes.
 * Throughput declines slightly with more failures (fewer candidate
 * nodes, less aggregate bandwidth) and ChameleonEC's lead grows
 * under the tighter bandwidth (43.6% at one failure, 65.7% at
 * three, per the paper).
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using analysis::Algorithm;

    init(argc, argv);
    if (smoke) {
        // Two failed nodes: more chunks than node 0's are lost, so
        // chunksRepaired must exceed the configured count.
        return runSmoke(
            "exp08_multinode",
            {Algorithm::kCr, Algorithm::kChameleon},
            [](analysis::ExperimentConfig &cfg) {
                cfg.failedNodes = 2;
            },
            [](ShapeChecker &chk, Algorithm,
               const analysis::ExperimentResult &r) {
                chk.check("multi-node failure repaired extra "
                          "chunks (" +
                              std::to_string(r.chunksRepaired) + ")",
                          r.chunksRepaired > kSmokeChunks);
            });
    }

    printHeader("Exp#8 (Fig. 19): multi-node repair",
                "RS(10,4), YCSB-A, 1..3 failed nodes");

    for (int failed = 1; failed <= 3; ++failed) {
        std::printf("%d failed node%s:\n", failed,
                    failed > 1 ? "s" : "");
        double cham = 0, cr = 0;
        for (auto algo : comparisonAlgorithms()) {
            auto cfg = defaultConfig();
            cfg.failedNodes = failed;
            // Keep total lost chunks roughly constant across rows.
            cfg.chunksToRepair = kBenchChunks / failed;
            auto r = runExperiment(algo, cfg);
            std::printf("  %-16s %7.1f MB/s (%d chunks)\n",
                        analysis::algorithmName(algo).c_str(),
                        r.repairThroughput / 1e6, r.chunksRepaired);
            if (algo == analysis::Algorithm::kChameleon)
                cham = r.repairThroughput;
            if (algo == analysis::Algorithm::kCr)
                cr = r.repairThroughput;
        }
        std::printf("  ChameleonEC vs CR: %+.1f%%\n",
                    (cham / cr - 1) * 100.0);
    }
    std::printf("\nShape check: throughput declines as failures "
                "grow; ChameleonEC stays ahead (paper: +43.6%% at 1 "
                "failure, +65.7%% at 3).\n");
    return 0;
}
