/**
 * @file
 * Exp#8 / Figure 19: multi-node repair with 1..3 failed nodes.
 * Throughput declines slightly with more failures (fewer candidate
 * nodes, less aggregate bandwidth) and ChameleonEC's lead grows
 * under the tighter bandwidth (43.6% at one failure, 65.7% at
 * three, per the paper).
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // Two failed nodes: more chunks than node 0's are lost, so
        // chunksRepaired must exceed the configured count.
        return runSmoke(
            "exp08_multinode",
            {Algorithm::kCr, Algorithm::kChameleon},
            [](runtime::ExperimentConfig &cfg) {
                cfg.failedNodes = 2;
            },
            [](ShapeChecker &chk, Algorithm,
               const runtime::ExperimentResult &r) {
                chk.check("multi-node failure repaired extra "
                          "chunks (" +
                              std::to_string(r.chunksRepaired) + ")",
                          r.chunksRepaired > kSmokeChunks);
            });
    }

    // One group per failure count (shared seedIndex per group).
    std::vector<runtime::SweepCell> cells;
    for (int failed = 1; failed <= 3; ++failed) {
        for (auto algo : comparisonAlgorithms()) {
            char label[48];
            std::snprintf(label, sizeof(label), "%d failed / %s",
                          failed,
                          runtime::algorithmName(algo).c_str());
            cells.push_back(makeCell(
                label, algo, failed - 1,
                [failed](runtime::ExperimentConfig &cfg) {
                    cfg.failedNodes = failed;
                    // Keep total lost chunks roughly constant
                    // across rows.
                    cfg.chunksToRepair = kBenchChunks / failed;
                }));
        }
    }

    printHeader("Exp#8 (Fig. 19): multi-node repair",
                "RS(10,4), YCSB-A, 1..3 failed nodes");

    double cham = 0, cr = 0;
    std::size_t per_group = comparisonAlgorithms().size();
    runCells(cells, [&](std::size_t i,
                        const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        int failed = static_cast<int>(i / per_group) + 1;
        if (i % per_group == 0) {
            std::printf("%d failed node%s:\n", failed,
                        failed > 1 ? "s" : "");
            cham = cr = 0;
        }
        std::printf("  %-16s %7.1f MB/s (%d chunks)\n",
                    runtime::algorithmName(cell.algorithm).c_str(),
                    r.repairThroughput / 1e6, r.chunksRepaired);
        if (cell.algorithm == Algorithm::kChameleon)
            cham = r.repairThroughput;
        if (cell.algorithm == Algorithm::kCr)
            cr = r.repairThroughput;
        if (i % per_group == per_group - 1)
            std::printf("  ChameleonEC vs CR: %+.1f%%\n",
                        (cham / cr - 1) * 100.0);
    });
    std::printf("\nShape check: throughput declines as failures "
                "grow; ChameleonEC stays ahead (paper: +43.6%% at 1 "
                "failure, +65.7%% at 3).\n");
    return 0;
}
