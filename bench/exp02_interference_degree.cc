/**
 * @file
 * Exp#2 / Figure 13: interference degree — the relative inflation of
 * trace execution time when repair runs concurrently,
 * (T_withRepair / T_alone) - 1. The paper reports ChameleonEC
 * reducing the degree by 45.9% / 50.2% / 56.7% on average vs
 * CR / PPR / ECPipe.
 */

#include <cstdio>
#include <map>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using analysis::Algorithm;

    init(argc, argv);
    if (smoke) {
        // Bounded-trace cell: the trace must actually finish and
        // report an execution time.
        return runSmoke(
            "exp02_interference_degree",
            {Algorithm::kCr, Algorithm::kChameleon},
            [](analysis::ExperimentConfig &cfg) {
                cfg.requestsPerClient = 2000;
            },
            [](ShapeChecker &chk, Algorithm,
               const analysis::ExperimentResult &r) {
                chk.positive("trace execution time s", r.traceTime);
            });
    }

    printHeader("Exp#2 (Fig. 13): interference degree",
                "bounded traces; degree = T_repair/T_alone - 1");

    std::map<Algorithm, Summary> degree;
    for (const auto &profile : traffic::allProfiles()) {
        auto base_cfg = defaultConfig();
        // Longer repair so it overlaps most of the trace, as in the
        // paper's 200-chunk runs.
        base_cfg.chunksToRepair = 150;
        base_cfg.trace = profile;
        // Request budgets sized so the trace spans the repair
        // window (~40-60 s trace-only) for every profile.
        if (profile.name == "YCSB-A")
            base_cfg.requestsPerClient = 40000;
        else if (profile.name == "IBM-ObjectStore")
            base_cfg.requestsPerClient = 800;
        else if (profile.name == "Memcached")
            base_cfg.requestsPerClient = 25000;
        else
            base_cfg.requestsPerClient = 8000;

        auto baseline = runExperiment(Algorithm::kNone, base_cfg);
        std::printf("%s (trace-only time %.1f s):\n",
                    profile.name.c_str(), baseline.traceTime);
        for (auto algo : comparisonAlgorithms()) {
            auto r = runExperiment(algo, base_cfg);
            double deg = r.traceTime / baseline.traceTime - 1.0;
            degree[algo].add(deg);
            std::printf("  %-16s trace time %7.1f s   degree "
                        "%+6.1f%%\n",
                        analysis::algorithmName(algo).c_str(),
                        r.traceTime, deg * 100.0);
        }
    }

    std::printf("\nAverage interference degree:\n");
    for (auto algo : comparisonAlgorithms()) {
        std::printf("  %-16s %+6.1f%%\n",
                    analysis::algorithmName(algo).c_str(),
                    degree[algo].mean * 100.0);
    }
    std::printf("Shape check: ChameleonEC has the lowest degree "
                "(paper: -45.9%% vs CR on average).\n");
    return 0;
}
