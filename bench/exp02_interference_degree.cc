/**
 * @file
 * Exp#2 / Figure 13: interference degree — the relative inflation of
 * trace execution time when repair runs concurrently,
 * (T_withRepair / T_alone) - 1. The paper reports ChameleonEC
 * reducing the degree by 45.9% / 50.2% / 56.7% on average vs
 * CR / PPR / ECPipe.
 */

#include <cstdio>
#include <map>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // Bounded-trace cell: the trace must actually finish and
        // report an execution time.
        return runSmoke(
            "exp02_interference_degree",
            {Algorithm::kCr, Algorithm::kChameleon},
            [](runtime::ExperimentConfig &cfg) {
                cfg.requestsPerClient = 2000;
            },
            [](ShapeChecker &chk, Algorithm,
               const runtime::ExperimentResult &r) {
                chk.positive("trace execution time s", r.traceTime);
            });
    }

    // Per trace: a kNone trace-only baseline first, then the four
    // comparison algorithms against the same bounded workload (one
    // seedIndex per trace keeps all five cells on one workload).
    auto profiles = traffic::allProfiles();
    std::vector<runtime::SweepCell> cells;
    for (std::size_t t = 0; t < profiles.size(); ++t) {
        auto tweak = [&](runtime::ExperimentConfig &cfg) {
            // Longer repair so it overlaps most of the trace, as in
            // the paper's 200-chunk runs.
            cfg.chunksToRepair = 150;
            cfg.trace = profiles[t];
            // Request budgets sized so the trace spans the repair
            // window (~40-60 s trace-only) for every profile.
            if (profiles[t].name == "YCSB-A")
                cfg.requestsPerClient = 40000;
            else if (profiles[t].name == "IBM-ObjectStore")
                cfg.requestsPerClient = 800;
            else if (profiles[t].name == "Memcached")
                cfg.requestsPerClient = 25000;
            else
                cfg.requestsPerClient = 8000;
        };
        cells.push_back(makeCell(profiles[t].name + " / trace-only",
                                 Algorithm::kNone,
                                 static_cast<int>(t), tweak));
        for (auto algo : comparisonAlgorithms())
            cells.push_back(makeCell(
                profiles[t].name + " / " +
                    runtime::algorithmName(algo),
                algo, static_cast<int>(t), tweak));
    }

    printHeader("Exp#2 (Fig. 13): interference degree",
                "bounded traces; degree = T_repair/T_alone - 1");

    std::map<Algorithm, Summary> degree;
    double baseline_time = 0.0;
    std::size_t per_group = 1 + comparisonAlgorithms().size();
    runCells(cells, [&](std::size_t i,
                        const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        if (cell.algorithm == Algorithm::kNone) {
            baseline_time = r.traceTime;
            std::printf("%s (trace-only time %.1f s):\n",
                        profiles[i / per_group].name.c_str(),
                        baseline_time);
            return;
        }
        double deg = r.traceTime / baseline_time - 1.0;
        degree[cell.algorithm].add(deg);
        std::printf("  %-16s trace time %7.1f s   degree "
                    "%+6.1f%%\n",
                    runtime::algorithmName(cell.algorithm).c_str(),
                    r.traceTime, deg * 100.0);
    });

    std::printf("\nAverage interference degree:\n");
    for (auto algo : comparisonAlgorithms()) {
        std::printf("  %-16s %+6.1f%%\n",
                    runtime::algorithmName(algo).c_str(),
                    degree[algo].mean * 100.0);
    }
    std::printf("Shape check: ChameleonEC has the lowest degree "
                "(paper: -45.9%% vs CR on average).\n");
    return 0;
}
