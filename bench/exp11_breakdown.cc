/**
 * @file
 * Exp#11 / Figure 22: breakdown study. ETRP (tunable plans only) vs
 * full ChameleonEC (ETRP + straggler-aware re-scheduling) and the
 * baselines, with a straggler injected at the 0/5/10-second point of
 * a repair phase (the paper throttles a participating node with a
 * competing reader). Full ChameleonEC should beat ETRP (paper:
 * +31.4% on average) because SAR bypasses the straggler.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // A straggler mid-repair; both ablation levels must finish.
        return runSmoke(
            "exp11_breakdown",
            {Algorithm::kEtrp, Algorithm::kChameleon},
            [](runtime::ExperimentConfig &cfg) {
                cfg.chameleon.checkPeriod = 1.0;
                cfg.chameleon.stragglerSlack = 2.0;
                cfg.stragglers.push_back(runtime::StragglerEvent{
                    1.0, kInvalidNode, 0.05, 10.0, true, true});
            });
    }

    // One group per straggler start time (shared seedIndex).
    const std::vector<double> starts = {0.0, 5.0, 10.0};
    const std::vector<Algorithm> algos = {
        Algorithm::kCr, Algorithm::kPpr, Algorithm::kEcpipe,
        Algorithm::kEtrp, Algorithm::kChameleon};
    std::vector<runtime::SweepCell> cells;
    for (std::size_t g = 0; g < starts.size(); ++g) {
        double t0 = starts[g];
        for (auto algo : algos) {
            char label[48];
            std::snprintf(label, sizeof(label),
                          "straggler %+0.0f s / %s", t0,
                          runtime::algorithmName(algo).c_str());
            cells.push_back(makeCell(
                label, algo, static_cast<int>(g),
                [t0](runtime::ExperimentConfig &cfg) {
                    cfg.chameleon.checkPeriod = 1.0;
                    cfg.chameleon.stragglerSlack = 2.0;
                    // Throttle a node participating in the repair.
                    cfg.stragglers.push_back(runtime::StragglerEvent{
                        t0, kInvalidNode, 0.05, 15.0, true, true});
                }));
        }
    }

    printHeader("Exp#11 (Fig. 22): breakdown (ETRP vs +SAR) under a "
                "straggler",
                "one node throttled to 5% for 15 s at t0 in "
                "{0, 5, 10} s after repair start");

    runCells(cells, [&](std::size_t i,
                        const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        if (i % algos.size() == 0)
            std::printf("straggler at %+0.0f s:\n",
                        starts[i / algos.size()]);
        // The paper's metric: repair throughput within the
        // monitored phase (the first T_phase = 20 s), i.e. the
        // chunks that still complete despite the straggler.
        Bytes in_phase = 0;
        for (std::size_t w = 0;
             w < r.throughputTimeline.size() &&
             static_cast<double>(w) * r.timelinePeriod < 20.0;
             ++w)
            in_phase += r.throughputTimeline[w] * r.timelinePeriod;
        std::printf("  %-16s in-phase %7.1f MB/s  (overall "
                    "%6.1f)",
                    runtime::algorithmName(cell.algorithm).c_str(),
                    in_phase / 20.0 / 1e6, r.repairThroughput / 1e6);
        if (cell.algorithm == Algorithm::kChameleon ||
            cell.algorithm == Algorithm::kEtrp)
            std::printf("  retunes %d reorders %d", r.retunes,
                        r.reorders);
        std::printf("\n");
    });
    std::printf("\nShape checks: full ChameleonEC >= ETRP under "
                "stragglers (SAR bypasses them); later stragglers "
                "hurt less.\n");
    return 0;
}
