/**
 * @file
 * Exp#11 / Figure 22: breakdown study. ETRP (tunable plans only) vs
 * full ChameleonEC (ETRP + straggler-aware re-scheduling) and the
 * baselines, with a straggler injected at the 0/5/10-second point of
 * a repair phase (the paper throttles a participating node with a
 * competing reader). Full ChameleonEC should beat ETRP (paper:
 * +31.4% on average) because SAR bypasses the straggler.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using analysis::Algorithm;

    init(argc, argv);
    if (smoke) {
        // A straggler mid-repair; both ablation levels must finish.
        return runSmoke(
            "exp11_breakdown",
            {Algorithm::kEtrp, Algorithm::kChameleon},
            [](analysis::ExperimentConfig &cfg) {
                cfg.chameleon.checkPeriod = 1.0;
                cfg.chameleon.stragglerSlack = 2.0;
                cfg.stragglers.push_back(analysis::StragglerEvent{
                    1.0, kInvalidNode, 0.05, 10.0, true, true});
            });
    }

    printHeader("Exp#11 (Fig. 22): breakdown (ETRP vs +SAR) under a "
                "straggler",
                "one node throttled to 5% for 15 s at t0 in "
                "{0, 5, 10} s after repair start");

    for (double t0 : {0.0, 5.0, 10.0}) {
        std::printf("straggler at %+0.0f s:\n", t0);
        for (auto algo : {Algorithm::kCr, Algorithm::kPpr,
                          Algorithm::kEcpipe, Algorithm::kEtrp,
                          Algorithm::kChameleon}) {
            auto cfg = defaultConfig();
            cfg.chameleon.checkPeriod = 1.0;
            cfg.chameleon.stragglerSlack = 2.0;
            // Throttle a node participating in the repair.
            cfg.stragglers.push_back(analysis::StragglerEvent{
                t0, kInvalidNode, 0.05, 15.0, true, true});
            auto r = runExperiment(algo, cfg);
            // The paper's metric: repair throughput within the
            // monitored phase (the first T_phase = 20 s), i.e. the
            // chunks that still complete despite the straggler.
            Bytes in_phase = 0;
            for (std::size_t w = 0;
                 w < r.throughputTimeline.size() &&
                 static_cast<double>(w) * r.timelinePeriod < 20.0;
                 ++w)
                in_phase += r.throughputTimeline[w] *
                            r.timelinePeriod;
            std::printf("  %-16s in-phase %7.1f MB/s  (overall "
                        "%6.1f)",
                        analysis::algorithmName(algo).c_str(),
                        in_phase / 20.0 / 1e6,
                        r.repairThroughput / 1e6);
            if (algo == Algorithm::kChameleon ||
                algo == Algorithm::kEtrp)
                std::printf("  retunes %d reorders %d", r.retunes,
                            r.reorders);
            std::printf("\n");
        }
    }
    std::printf("\nShape checks: full ChameleonEC >= ETRP under "
                "stragglers (SAR bypasses them); later stragglers "
                "hurt less.\n");
    return 0;
}
