/**
 * @file
 * Shared configuration, CLI flags, and table formatting for the
 * experiment bench binaries. Each binary reproduces one figure/table
 * of the paper (see DESIGN.md's experiment index and EXPERIMENTS.md
 * for the paper-vs-measured record) as a declarative table of sweep
 * cells executed by runtime::SweepRunner.
 *
 * Shared flags (parsed by init()):
 *   --smoke     tiny fixed-seed slice with shape checks (CTest)
 *   --list      print the binary's sweep cells without running
 *   --jobs N    worker threads (0 = hardware concurrency)
 *   --seed S    base seed; per-cell seeds derive via splitmix64
 *   --out FILE  write the table to FILE instead of stdout
 *
 * `--jobs 1` and `--jobs N` produce byte-identical tables; see
 * runtime/sweep.hh for the determinism contract.
 *
 * Scaling: the paper repairs 200 x 64 MB chunks with 1 MB slices and
 * replays 100k requests per client. To keep every binary's wall time
 * in seconds on one core, benches default to 60 chunks and 2 MB
 * slices and scale request budgets similarly. The scaling applies
 * identically to every algorithm in a table, so the comparisons and
 * trends the paper reports are preserved; each binary prints its
 * scale in the header.
 */

#ifndef CHAMELEON_BENCH_BENCH_COMMON_HH_
#define CHAMELEON_BENCH_BENCH_COMMON_HH_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "runtime/experiment.hh"
#include "runtime/sweep.hh"

namespace chameleon {
namespace bench {

/** The shared bench CLI, one instance per process (each bench binary
 * is its own process; sweep workers never write these). */
struct BenchOptions
{
    bool smoke = false;
    bool list = false;
    int jobs = 1;
    uint64_t seed = 0;
    std::string out;
};

inline BenchOptions &
opts()
{
    static BenchOptions o;
    return o;
}

/**
 * Parses the shared flags into `out`. Accepts `--flag value` and
 * `--flag=value`. Returns false with a message in `err` on an
 * unknown flag, missing value, or malformed number.
 */
inline bool
parseFlags(int argc, char **argv, BenchOptions &out, std::string &err)
{
    auto value = [&](int &i, const std::string &arg,
                     const char *name, std::string *val) {
        std::string prefix = std::string(name) + "=";
        if (arg.rfind(prefix, 0) == 0) {
            *val = arg.substr(prefix.size());
            return true;
        }
        if (arg != name)
            return false;
        if (i + 1 >= argc) {
            err = std::string(name) + " needs a value";
            *val = "";
            return true;
        }
        *val = argv[++i];
        return true;
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string val;
        if (arg == "--smoke") {
            out.smoke = true;
        } else if (arg == "--list") {
            out.list = true;
        } else if (value(i, arg, "--jobs", &val)) {
            if (!err.empty())
                return false;
            char *end = nullptr;
            out.jobs = static_cast<int>(std::strtol(
                val.c_str(), &end, 10));
            if (val.empty() || *end) {
                err = "--jobs wants an integer, got '" + val + "'";
                return false;
            }
        } else if (value(i, arg, "--seed", &val)) {
            if (!err.empty())
                return false;
            char *end = nullptr;
            out.seed = std::strtoull(val.c_str(), &end, 10);
            if (val.empty() || *end) {
                err = "--seed wants an integer, got '" + val + "'";
                return false;
            }
        } else if (value(i, arg, "--out", &val)) {
            if (!err.empty())
                return false;
            out.out = val;
        } else {
            err = "unknown flag '" + arg + "'";
            return false;
        }
    }
    return true;
}

/** Parses the shared bench CLI; call first in every main(). */
inline void
init(int argc, char **argv)
{
    BenchOptions parsed;
    std::string err;
    if (!parseFlags(argc, argv, parsed, err)) {
        std::fprintf(stderr,
                     "%s\nusage: %s [--smoke] [--list] [--jobs N] "
                     "[--seed S] [--out FILE]\n",
                     err.c_str(), argv[0]);
        std::exit(2);
    }
    opts() = parsed;
    if (!parsed.out.empty() &&
        !std::freopen(parsed.out.c_str(), "w", stdout)) {
        std::fprintf(stderr, "cannot open --out file '%s'\n",
                     parsed.out.c_str());
        std::exit(2);
    }
}

/**
 * Runs a declarative cell table through SweepRunner, honoring
 * --jobs/--seed; `emit` fires per cell on this thread, in table
 * order. Under --list, prints the table and exits instead.
 */
inline std::vector<runtime::ExperimentResult>
runCells(const std::vector<runtime::SweepCell> &cells,
         const runtime::SweepRunner::Emit &emit = {})
{
    if (opts().list) {
        std::printf("%zu cells:\n", cells.size());
        for (std::size_t i = 0; i < cells.size(); ++i)
            std::printf("  [%3zu] %-44s %-14s seedIndex %d\n", i,
                        cells[i].label.c_str(),
                        runtime::algorithmName(cells[i].algorithm)
                            .c_str(),
                        cells[i].seedIndex);
        std::exit(0);
    }
    runtime::SweepOptions so;
    so.jobs = opts().jobs;
    so.baseSeed = opts().seed;
    runtime::SweepRunner runner(so);
    return runner.run(cells, emit);
}

/** Chunks repaired per cell (paper: 200). */
inline constexpr int kBenchChunks = 60;

/** Smoke-mode chunk count: enough for a real repair window while
 * keeping each cell well under a second. */
inline constexpr int kSmokeChunks = 6;

/** Chunks per cell honoring --smoke; `full` overrides the default
 * full-scale count. */
inline int
benchChunks(int full = kBenchChunks)
{
    return opts().smoke ? kSmokeChunks : full;
}

/**
 * Collects named pass/fail shape checks and renders them as a
 * compact report; exitCode() feeds main's return so CTest sees
 * failures.
 */
class ShapeChecker
{
  public:
    void check(const std::string &what, bool ok)
    {
        std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
        if (!ok)
            failed_ = true;
    }

    /** check() with the measured value appended to the label. */
    void positive(const std::string &what, double value)
    {
        check(what + " > 0 (got " + std::to_string(value) + ")",
              value > 0);
    }

    void equals(const std::string &what, long long got,
                long long want)
    {
        check(what + " == " + std::to_string(want) + " (got " +
                  std::to_string(got) + ")",
              got == want);
    }

    bool failed() const { return failed_; }
    int exitCode() const { return failed_ ? 1 : 0; }

  private:
    bool failed_ = false;
};

/** Slice size used by benches (paper: 1 MB). */
inline constexpr Bytes kBenchSlice = 2 * units::MiB;

/** Baseline experiment config at the paper's Section V-A settings
 * (scaled per the file comment). */
inline runtime::ExperimentConfig
defaultConfig()
{
    runtime::ExperimentConfig cfg;
    cfg.chunksToRepair = kBenchChunks;
    cfg.exec.sliceSize = kBenchSlice;
    cfg.trace = traffic::ycsbA();
    cfg.seed = 42;
    return cfg;
}

/** Builds one sweep cell on top of defaultConfig(). */
inline runtime::SweepCell
makeCell(const std::string &label, runtime::Algorithm algorithm,
         int seedIndex = -1,
         const std::function<void(runtime::ExperimentConfig &)>
             &tweak = {})
{
    runtime::SweepCell cell;
    cell.label = label;
    cell.algorithm = algorithm;
    cell.config = defaultConfig();
    cell.seedIndex = seedIndex;
    if (tweak)
        tweak(cell.config);
    return cell;
}

/** The four baseline-vs-Chameleon comparison algorithms. */
inline std::vector<runtime::Algorithm>
comparisonAlgorithms()
{
    using runtime::Algorithm;
    return {Algorithm::kCr, Algorithm::kPpr, Algorithm::kEcpipe,
            Algorithm::kChameleon};
}

inline void
printHeader(const std::string &title, const std::string &setup)
{
    std::printf("==================================================="
                "=============\n");
    std::printf("%s\n", title.c_str());
    std::printf("setup: %s\n", setup.c_str());
    std::printf("scale: %d chunks x 64 MiB, %.0f MiB slices "
                "(paper: 200 x 64 MiB, 1 MiB)\n",
                kBenchChunks, kBenchSlice / units::MiB);
    std::printf("==================================================="
                "=============\n");
}

inline void
printRow(const std::string &label, double tput_mbs, double p99_ms)
{
    std::printf("  %-16s repair throughput %7.1f MB/s   P99 %6.1f ms\n",
                label.c_str(), tput_mbs, p99_ms);
}

/** Latency detail line beneath a printRow() (one sorted pass; see
 * LatencyRecorder::summary()). Summary values are in seconds. */
inline void
printLatencyDetail(const LatencySummary &s)
{
    std::printf("      latency mean %6.1f ms  P50 %6.1f ms  "
                "P99 %6.1f ms  max %6.1f ms  (%zu requests)\n",
                s.mean * 1e3, s.p50 * 1e3, s.p99 * 1e3, s.max * 1e3,
                s.count);
}

/**
 * Shared smoke-mode body: runs one tiny fixed-seed cell per
 * algorithm — through SweepRunner, so --smoke --jobs 2 exercises the
 * concurrent path — and applies the checks every repair experiment
 * must pass (positive throughput, every lost chunk repaired or
 * reported unrecoverable). `tweak` edits the cell config; `extra`
 * adds binary-specific checks. Returns main()'s exit code.
 */
inline int
runSmoke(const std::string &name,
         const std::vector<runtime::Algorithm> &algos,
         const std::function<void(runtime::ExperimentConfig &)>
             &tweak = {},
         const std::function<void(ShapeChecker &,
                                  runtime::Algorithm,
                                  const runtime::ExperimentResult &)>
             &extra = {})
{
    std::printf("%s --smoke: %d chunks, seed 7, jobs %d\n",
                name.c_str(), kSmokeChunks, opts().jobs);
    std::vector<runtime::SweepCell> cells;
    for (auto algo : algos) {
        auto cell = makeCell(runtime::algorithmName(algo), algo);
        cell.config.chunksToRepair = kSmokeChunks;
        cell.config.seed = 7;
        // Pin the historical smoke seed even under --seed.
        cell.deriveSeed = false;
        if (tweak)
            tweak(cell.config);
        cells.push_back(std::move(cell));
    }
    ShapeChecker chk;
    runCells(cells, [&](std::size_t, const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        const std::string &label = cell.label;
        chk.positive(label + " repair throughput MB/s",
                     r.repairThroughput / 1e6);
        chk.positive(label + " repair time s", r.repairTime);
        // >= because multi-node failure cells lose extra chunks
        // beyond node 0's.
        chk.check(label + " chunks accounted for (" +
                      std::to_string(r.chunksRepaired) +
                      " repaired + " +
                      std::to_string(r.chunksUnrecoverable) +
                      " unrecoverable vs " +
                      std::to_string(cell.config.chunksToRepair) +
                      " lost)",
                  r.chunksRepaired + r.chunksUnrecoverable >=
                      cell.config.chunksToRepair);
        if (extra)
            extra(chk, cell.algorithm, r);
    });
    return chk.exitCode();
}

} // namespace bench
} // namespace chameleon

#endif // CHAMELEON_BENCH_BENCH_COMMON_HH_
