/**
 * @file
 * Shared configuration and table formatting for the experiment bench
 * binaries. Each binary reproduces one figure/table of the paper
 * (see DESIGN.md's experiment index and EXPERIMENTS.md for the
 * paper-vs-measured record).
 *
 * Scaling: the paper repairs 200 x 64 MB chunks with 1 MB slices and
 * replays 100k requests per client. To keep every binary's wall time
 * in seconds on one core, benches default to 60 chunks and 2 MB
 * slices and scale request budgets similarly. The scaling applies
 * identically to every algorithm in a table, so the comparisons and
 * trends the paper reports are preserved; each binary prints its
 * scale in the header.
 */

#ifndef CHAMELEON_BENCH_BENCH_COMMON_HH_
#define CHAMELEON_BENCH_BENCH_COMMON_HH_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "analysis/experiment.hh"

namespace chameleon {
namespace bench {

/**
 * Smoke mode (--smoke): every bench binary runs a tiny fixed-seed
 * slice of its sweep and exits non-zero if the results fail cheap
 * shape checks (throughput positive, every chunk accounted for,
 * expected orderings hold). `ctest -L bench_smoke` runs all of them;
 * the full sweeps still run by default.
 */
inline bool smoke = false;

/** Parses the shared bench CLI; call first in every main(). */
inline void
init(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            std::fprintf(stderr,
                         "unknown flag '%s' (only --smoke)\n",
                         argv[i]);
            std::exit(2);
        }
    }
}

/** Chunks repaired per cell (paper: 200). */
inline constexpr int kBenchChunks = 60;

/** Smoke-mode chunk count: enough for a real repair window while
 * keeping each cell well under a second. */
inline constexpr int kSmokeChunks = 6;

/** Chunks per cell honoring --smoke; `full` overrides the default
 * full-scale count. */
inline int
benchChunks(int full = kBenchChunks)
{
    return smoke ? kSmokeChunks : full;
}

/**
 * Collects named pass/fail shape checks and renders them as a
 * compact report; exitCode() feeds main's return so CTest sees
 * failures.
 */
class ShapeChecker
{
  public:
    void check(const std::string &what, bool ok)
    {
        std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
        if (!ok)
            failed_ = true;
    }

    /** check() with the measured value appended to the label. */
    void positive(const std::string &what, double value)
    {
        check(what + " > 0 (got " + std::to_string(value) + ")",
              value > 0);
    }

    void equals(const std::string &what, long long got,
                long long want)
    {
        check(what + " == " + std::to_string(want) + " (got " +
                  std::to_string(got) + ")",
              got == want);
    }

    bool failed() const { return failed_; }
    int exitCode() const { return failed_ ? 1 : 0; }

  private:
    bool failed_ = false;
};

/** Slice size used by benches (paper: 1 MB). */
inline constexpr Bytes kBenchSlice = 2 * units::MiB;

/** Baseline experiment config at the paper's Section V-A settings
 * (scaled per the file comment). */
inline analysis::ExperimentConfig
defaultConfig()
{
    analysis::ExperimentConfig cfg;
    cfg.chunksToRepair = kBenchChunks;
    cfg.exec.sliceSize = kBenchSlice;
    cfg.trace = traffic::ycsbA();
    cfg.seed = 42;
    return cfg;
}

/** The four baseline-vs-Chameleon comparison algorithms. */
inline std::vector<analysis::Algorithm>
comparisonAlgorithms()
{
    using analysis::Algorithm;
    return {Algorithm::kCr, Algorithm::kPpr, Algorithm::kEcpipe,
            Algorithm::kChameleon};
}

inline void
printHeader(const std::string &title, const std::string &setup)
{
    std::printf("==================================================="
                "=============\n");
    std::printf("%s\n", title.c_str());
    std::printf("setup: %s\n", setup.c_str());
    std::printf("scale: %d chunks x 64 MiB, %.0f MiB slices "
                "(paper: 200 x 64 MiB, 1 MiB)\n",
                kBenchChunks, kBenchSlice / units::MiB);
    std::printf("==================================================="
                "=============\n");
}

inline void
printRow(const std::string &label, double tput_mbs, double p99_ms)
{
    std::printf("  %-16s repair throughput %7.1f MB/s   P99 %6.1f ms\n",
                label.c_str(), tput_mbs, p99_ms);
}

/** Latency detail line beneath a printRow() (one sorted pass; see
 * LatencyRecorder::summary()). Summary values are in seconds. */
inline void
printLatencyDetail(const LatencySummary &s)
{
    std::printf("      latency mean %6.1f ms  P50 %6.1f ms  "
                "P99 %6.1f ms  max %6.1f ms  (%zu requests)\n",
                s.mean * 1e3, s.p50 * 1e3, s.p99 * 1e3, s.max * 1e3,
                s.count);
}

/**
 * Shared smoke-mode body: runs one tiny fixed-seed cell per
 * algorithm and applies the checks every repair experiment must
 * pass (positive throughput, every lost chunk repaired or reported
 * unrecoverable). `tweak` edits the cell config; `extra` adds
 * binary-specific checks. Returns main()'s exit code.
 */
inline int
runSmoke(const std::string &name,
         const std::vector<analysis::Algorithm> &algos,
         const std::function<void(analysis::ExperimentConfig &)>
             &tweak = {},
         const std::function<void(ShapeChecker &,
                                  analysis::Algorithm,
                                  const analysis::ExperimentResult &)>
             &extra = {})
{
    std::printf("%s --smoke: %d chunks, seed 7\n", name.c_str(),
                kSmokeChunks);
    ShapeChecker chk;
    for (auto algo : algos) {
        auto cfg = defaultConfig();
        cfg.chunksToRepair = kSmokeChunks;
        cfg.seed = 7;
        if (tweak)
            tweak(cfg);
        auto r = analysis::runExperiment(algo, cfg);
        auto label = analysis::algorithmName(algo);
        chk.positive(label + " repair throughput MB/s",
                     r.repairThroughput / 1e6);
        chk.positive(label + " repair time s", r.repairTime);
        // >= because multi-node failure cells lose extra chunks
        // beyond node 0's.
        chk.check(label + " chunks accounted for (" +
                      std::to_string(r.chunksRepaired) +
                      " repaired + " +
                      std::to_string(r.chunksUnrecoverable) +
                      " unrecoverable vs " +
                      std::to_string(cfg.chunksToRepair) + " lost)",
                  r.chunksRepaired + r.chunksUnrecoverable >=
                      cfg.chunksToRepair);
        if (extra)
            extra(chk, algo, r);
    }
    return chk.exitCode();
}

} // namespace bench
} // namespace chameleon

#endif // CHAMELEON_BENCH_BENCH_COMMON_HH_
