/**
 * @file
 * Shared configuration and table formatting for the experiment bench
 * binaries. Each binary reproduces one figure/table of the paper
 * (see DESIGN.md's experiment index and EXPERIMENTS.md for the
 * paper-vs-measured record).
 *
 * Scaling: the paper repairs 200 x 64 MB chunks with 1 MB slices and
 * replays 100k requests per client. To keep every binary's wall time
 * in seconds on one core, benches default to 60 chunks and 2 MB
 * slices and scale request budgets similarly. The scaling applies
 * identically to every algorithm in a table, so the comparisons and
 * trends the paper reports are preserved; each binary prints its
 * scale in the header.
 */

#ifndef CHAMELEON_BENCH_BENCH_COMMON_HH_
#define CHAMELEON_BENCH_BENCH_COMMON_HH_

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/experiment.hh"

namespace chameleon {
namespace bench {

/** Chunks repaired per cell (paper: 200). */
inline constexpr int kBenchChunks = 60;

/** Slice size used by benches (paper: 1 MB). */
inline constexpr Bytes kBenchSlice = 2 * units::MiB;

/** Baseline experiment config at the paper's Section V-A settings
 * (scaled per the file comment). */
inline analysis::ExperimentConfig
defaultConfig()
{
    analysis::ExperimentConfig cfg;
    cfg.chunksToRepair = kBenchChunks;
    cfg.exec.sliceSize = kBenchSlice;
    cfg.trace = traffic::ycsbA();
    cfg.seed = 42;
    return cfg;
}

/** The four baseline-vs-Chameleon comparison algorithms. */
inline std::vector<analysis::Algorithm>
comparisonAlgorithms()
{
    using analysis::Algorithm;
    return {Algorithm::kCr, Algorithm::kPpr, Algorithm::kEcpipe,
            Algorithm::kChameleon};
}

inline void
printHeader(const std::string &title, const std::string &setup)
{
    std::printf("==================================================="
                "=============\n");
    std::printf("%s\n", title.c_str());
    std::printf("setup: %s\n", setup.c_str());
    std::printf("scale: %d chunks x 64 MiB, %.0f MiB slices "
                "(paper: 200 x 64 MiB, 1 MiB)\n",
                kBenchChunks, kBenchSlice / units::MiB);
    std::printf("==================================================="
                "=============\n");
}

inline void
printRow(const std::string &label, double tput_mbs, double p99_ms)
{
    std::printf("  %-16s repair throughput %7.1f MB/s   P99 %6.1f ms\n",
                label.c_str(), tput_mbs, p99_ms);
}

/** Latency detail line beneath a printRow() (one sorted pass; see
 * LatencyRecorder::summary()). Summary values are in seconds. */
inline void
printLatencyDetail(const LatencySummary &s)
{
    std::printf("      latency mean %6.1f ms  P50 %6.1f ms  "
                "P99 %6.1f ms  max %6.1f ms  (%zu requests)\n",
                s.mean * 1e3, s.p50 * 1e3, s.p99 * 1e3, s.max * 1e3,
                s.count);
}

} // namespace bench
} // namespace chameleon

#endif // CHAMELEON_BENCH_BENCH_COMMON_HH_
