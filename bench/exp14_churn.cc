/**
 * @file
 * Exp#14: repair under churn. The paper's experiments fail nodes
 * before repair begins; real clusters keep misbehaving while repair
 * runs. This bench injects faults mid-repair — a node crash (with
 * delayed rejoin), link degradations, and a monitor blackout — and
 * compares how CR, PPR, ECPipe, and ChameleonEC absorb them: chunks
 * lost by the mid-repair crash fold into the queue, aborted repairs
 * re-plan against the survivors, and the run ends with every chunk
 * repaired or reported unrecoverable.
 *
 * Rows sweep the chaos rate (Poisson fault arrivals, fixed seed so
 * every algorithm sees the same schedule); a rate of 0 is the
 * churn-free baseline.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // A crash 2 s into repair (rejoining at 22 s) plus a link
        // flap; every algorithm must absorb both and account for
        // every chunk, including the ones the crash destroyed.
        return runSmoke(
            "exp14_churn", comparisonAlgorithms(),
            [](runtime::ExperimentConfig &cfg) {
                cfg.faults = fault::FaultSchedule::parse(
                    "crash@2:dur=20;"
                    "linkdeg@4:factor=0.2:dur=6");
            },
            [](ShapeChecker &chk, Algorithm,
               const runtime::ExperimentResult &r) {
                chk.positive("faults injected", r.faultsInjected);
            });
    }

    // One group per chaos rate (shared seedIndex per group; the
    // chaos schedule itself stays pinned by chaosSeed so every
    // algorithm sees the same faults).
    const std::vector<double> rates = {0.0, 0.1, 0.3, 0.6};
    std::vector<runtime::SweepCell> cells;
    for (std::size_t g = 0; g < rates.size(); ++g) {
        double rate = rates[g];
        for (auto algo : comparisonAlgorithms()) {
            char label[48];
            std::snprintf(label, sizeof(label), "chaos %.2f / %s",
                          rate,
                          runtime::algorithmName(algo).c_str());
            cells.push_back(makeCell(
                label, algo, static_cast<int>(g),
                [rate](runtime::ExperimentConfig &cfg) {
                    cfg.chunksToRepair = 40;
                    cfg.chaosRate = rate;
                    cfg.chaosSeed = 1234;
                    // Concentrate the events inside the repair
                    // window; the default 120 s horizon would land
                    // most of them after a ~15 s repair already
                    // finished.
                    cfg.chaosHorizon = 15.0;
                }));
        }
    }

    printHeader("Exp#14: repair under churn",
                "RS(10,4), YCSB-A; Poisson faults mid-repair "
                "(crashes, link flaps, slow disks, monitor "
                "blackouts), same schedule for every algorithm");

    double cham = 0, cr = 0;
    std::size_t per_group = comparisonAlgorithms().size();
    runCells(cells, [&](std::size_t i,
                        const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        if (i % per_group == 0) {
            std::printf("chaos rate %.2f events/s:\n",
                        rates[i / per_group]);
            cham = cr = 0;
        }
        std::printf("  %-16s %7.1f MB/s in %6.1f s   faults %2d "
                    "replans %2d unrecoverable %d\n",
                    runtime::algorithmName(cell.algorithm).c_str(),
                    r.repairThroughput / 1e6, r.repairTime,
                    r.faultsInjected, r.crashReplans,
                    r.chunksUnrecoverable);
        if (cell.algorithm == Algorithm::kChameleon)
            cham = r.repairThroughput;
        if (cell.algorithm == Algorithm::kCr)
            cr = r.repairThroughput;
        if (i % per_group == per_group - 1 && cr > 0)
            std::printf("  ChameleonEC vs CR: %+.1f%%\n",
                        (cham / cr - 1) * 100.0);
    });

    std::printf("\nShape checks: higher chaos rates stretch every "
                "algorithm's repair; chunk accounting still closes "
                "(repaired + unrecoverable covers every loss, "
                "including chunks destroyed mid-repair).\n");
    return 0;
}
