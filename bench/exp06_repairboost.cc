/**
 * @file
 * Exp#6 / Figure 17: the baselines boosted by RepairBoost-style
 * balanced scheduling (RB+CR, RB+PPR, RB+ECPipe) against ChameleonEC.
 * The paper finds RB lifts every baseline (e.g. ECPipe 110.6 ->
 * 142.7 MB/s) yet ChameleonEC still leads by 34.8% / 16.7% / 46.2%.
 */

#include <cstdio>
#include <map>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // One plain and one RB-scheduled cell per topology family.
        return runSmoke("exp06_repairboost",
                        {Algorithm::kRbCr, Algorithm::kRbPpr,
                         Algorithm::kRbEcpipe});
    }

    // One workload, every scheduler variant (shared seedIndex).
    std::vector<runtime::SweepCell> cells;
    for (auto algo : {Algorithm::kCr, Algorithm::kRbCr,
                      Algorithm::kPpr, Algorithm::kRbPpr,
                      Algorithm::kEcpipe, Algorithm::kRbEcpipe,
                      Algorithm::kChameleon})
        cells.push_back(
            makeCell(runtime::algorithmName(algo), algo, 0));

    printHeader("Exp#6 (Fig. 17): RepairBoost-scheduled baselines",
                "RS(10,4), YCSB-A");

    std::map<Algorithm, double> tput;
    runCells(cells, [&](std::size_t, const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        tput[cell.algorithm] = r.repairThroughput;
        printRow(cell.label, r.repairThroughput / 1e6,
                 r.p99LatencyMs);
    });

    auto gain = [&](Algorithm base) {
        return (tput[Algorithm::kChameleon] / tput[base] - 1) * 100.0;
    };
    std::printf("\nRB lifts CR strongly (balance is CR's weakness); "
                "ChameleonEC vs RB+CR "
                "%+.1f%%, RB+PPR %+.1f%%, RB+ECPipe %+.1f%% (paper: "
                "+34.8%%, +16.7%%, +46.2%%)\n",
                gain(Algorithm::kRbCr), gain(Algorithm::kRbPpr),
                gain(Algorithm::kRbEcpipe));
    return 0;
}
