/**
 * @file
 * Exp#17: wide codes and hedged degraded reads. Part A sweeps the
 * codec registry from RS(6,3) up to RS(24,8) plus multi-group LRC
 * variants — every code built through the registry grammar, every
 * cell sized so the stripe fits with placement headroom — and
 * reports repair throughput next to each code's guaranteed
 * repairable count (the fault-tolerance the wider stripe buys).
 * Part B pins a straggler into a degraded read's helper set and
 * compares the hedged policy (second repair attempt from a disjoint
 * helper set when the primary blows through its expected completion
 * time) against the same reads without hedging: the hedge turns a
 * straggler-dominated tail into a near-nominal read.
 *
 * Results go to BENCH_runtime.json (exp16_scrub style).
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "ec/factory.hh"
#include "util/format.hh"

namespace {

using namespace chameleon;

/** The pinned Part B scenario: one slow helper for the whole run. */
void
hedgedScenario(runtime::ExperimentConfig &cfg, int chunks, bool hedge)
{
    cfg.code = ec::makeCode("rs(10,4)");
    cfg.cluster.numNodes = 24;
    cfg.chunksToRepair = chunks;
    cfg.trace.reset(); // isolate the repair path from foreground I/O
    cfg.degraded.enabled = true;
    cfg.degraded.hedge = hedge;
    cfg.stragglers.push_back(runtime::StragglerEvent{
        0.1, kInvalidNode, 0.02, 120.0, true, true});
    cfg.seed = 7;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // Wide-RS leg: a full RS(20,8) repair through both a session
        // baseline and the Chameleon dispatcher.
        int rc = runSmoke(
            "exp17_wide_codes",
            {Algorithm::kCr, Algorithm::kChameleon},
            [](runtime::ExperimentConfig &cfg) {
                cfg.code = ec::makeCode("rs(20,8)");
                cfg.cluster.numNodes = 36;
            },
            [](ShapeChecker &chk, Algorithm,
               const runtime::ExperimentResult &r) {
                chk.equals("wide-code chunks repaired",
                           r.chunksRepaired, kSmokeChunks);
            });
        // Hedged leg: the pinned straggler scenario must finish with
        // at least one hedge launched.
        ShapeChecker chk;
        auto cell = makeCell("hedged degraded read", Algorithm::kCr);
        hedgedScenario(cell.config, 1, true);
        cell.deriveSeed = false;
        runCells({cell}, [&](std::size_t,
                             const runtime::SweepCell &,
                             const runtime::ExperimentResult &r) {
            chk.equals("hedged chunk repaired", r.chunksRepaired, 1);
            chk.check("hedge launched (got " +
                          std::to_string(r.hedgesIssued) + ")",
                      r.hedgesIssued >= 1);
            chk.positive("degraded P99 ms",
                         r.degradedLatency.p99 * 1e3);
        });
        return rc != 0 ? rc : chk.exitCode();
    }

    // Part A: codec-registry sweep. Every code is built through the
    // string grammar; numNodes scales with the stripe width so
    // placement always has headroom.
    const std::vector<std::string> specs = {
        "rs(6,3)",  "rs(10,4)",      "rs(16,6)",     "rs(20,8)",
        "rs(24,8)", "lrc(12,2,2,2)", "lrc(24,4,2,2)"};
    const std::vector<Algorithm> algos = {Algorithm::kCr,
                                          Algorithm::kChameleon};
    std::vector<runtime::SweepCell> cells;
    for (std::size_t c = 0; c < specs.size(); ++c) {
        auto code = ec::makeCode(specs[c]);
        for (auto algo : algos) {
            char label[64];
            std::snprintf(label, sizeof(label), "%s / %s",
                          specs[c].c_str(),
                          runtime::algorithmName(algo).c_str());
            cells.push_back(makeCell(
                label, algo, static_cast<int>(c),
                [code](runtime::ExperimentConfig &cfg) {
                    cfg.code = code;
                    cfg.cluster.numNodes =
                        std::max(20, code->n() + 8);
                    cfg.chunksToRepair = benchChunks(40);
                }));
        }
    }

    printHeader("Exp#17: wide codes + hedged degraded reads",
                "registry-built codes RS(6,3)..RS(24,8) and "
                "multi-group LRCs; then hedged vs unhedged degraded "
                "reads under a pinned straggler");

    struct WideRow
    {
        std::string spec;
        int n = 0, k = 0, guaranteed = 0;
        Algorithm algorithm = Algorithm::kNone;
        runtime::ExperimentResult r;
    };
    std::vector<WideRow> wide;
    runCells(cells, [&](std::size_t i, const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        const std::string &spec = specs[i / algos.size()];
        const auto &code = *cell.config.code;
        if (i % algos.size() == 0)
            std::printf("%s (n=%d, k=%d, guaranteed repairable "
                        "%d):\n",
                        spec.c_str(), code.n(), code.k(),
                        code.guaranteedRepairableCount());
        std::printf("  %-16s repair %7.1f MB/s   fg P99 %6.1f ms\n",
                    runtime::algorithmName(cell.algorithm).c_str(),
                    r.repairThroughput / 1e6, r.p99LatencyMs);
        wide.push_back({spec, code.n(), code.k(),
                        code.guaranteedRepairableCount(),
                        cell.algorithm, r});
    });

    // Part B: hedged vs unhedged degraded reads, pinned straggler.
    // deriveSeed=false: the scenario (and its straggler placement)
    // is pinned, like the smoke cells.
    std::vector<runtime::SweepCell> hcells;
    const std::vector<int> chunk_counts = {1, 2};
    for (std::size_t g = 0; g < chunk_counts.size(); ++g) {
        for (int hedge = 0; hedge <= 1; ++hedge) {
            char label[48];
            std::snprintf(label, sizeof(label),
                          "%d-chunk degraded read, %s",
                          chunk_counts[g],
                          hedge ? "hedged" : "no hedge");
            auto cell = makeCell(label, Algorithm::kCr,
                                 static_cast<int>(g));
            hedgedScenario(cell.config, chunk_counts[g], hedge != 0);
            cell.deriveSeed = false;
            hcells.push_back(std::move(cell));
        }
    }

    struct HedgeRow
    {
        std::string label;
        int chunks = 0;
        bool hedge = false;
        runtime::ExperimentResult r;
    };
    std::vector<HedgeRow> hrows;
    std::printf("\nHedged degraded reads (RS(10,4), 24 nodes, one "
                "helper throttled to 2%% for the whole run):\n");
    runCells(hcells, [&](std::size_t i, const runtime::SweepCell &cell,
                         const runtime::ExperimentResult &r) {
        std::printf("  %-32s P99 %8.1f ms  hedges %d won %d\n",
                    cell.label.c_str(), r.degradedLatency.p99 * 1e3,
                    r.hedgesIssued, r.hedgeWins);
        hrows.push_back({cell.label,
                         chunk_counts[i / 2], i % 2 == 1, r});
    });

    ShapeChecker chk;
    for (const WideRow &row : wide) {
        chk.check(row.spec + " / " +
                      runtime::algorithmName(row.algorithm) +
                      " all chunks repaired (" +
                      std::to_string(row.r.chunksRepaired) + ")",
                  row.r.chunksRepaired == benchChunks(40));
        chk.check(row.spec + " guaranteed repairable > 0 (" +
                      std::to_string(row.guaranteed) + ")",
                  row.guaranteed > 0);
    }
    for (std::size_t g = 0; g + 1 < hrows.size(); g += 2) {
        const HedgeRow &plain = hrows[g];
        const HedgeRow &hedged = hrows[g + 1];
        chk.check(hedged.label + " beats no-hedge P99 (" +
                      std::to_string(hedged.r.degradedLatency.p99 *
                                     1e3) +
                      " ms vs " +
                      std::to_string(plain.r.degradedLatency.p99 *
                                     1e3) +
                      " ms)",
                  hedged.r.degradedLatency.p99 <
                      plain.r.degradedLatency.p99);
        chk.check(hedged.label + " launched hedges (" +
                      std::to_string(hedged.r.hedgesIssued) + ")",
                  hedged.r.hedgesIssued >= 1);
    }

    std::FILE *json = std::fopen("BENCH_runtime.json", "w");
    if (json) {
        std::fprintf(
            json,
            "{\n"
            "  \"bench\": \"exp17_wide_codes\",\n"
            "  \"description\": \"registry-built wide-RS and "
            "multi-group LRC repair sweep, plus hedged vs unhedged "
            "degraded reads under a pinned straggler\",\n"
            "  \"results\": [\n");
        for (std::size_t i = 0; i < wide.size(); ++i) {
            const WideRow &row = wide[i];
            std::fprintf(
                json,
                "    {\"code\": \"%s\", \"n\": %d, \"k\": %d,\n"
                "     \"guaranteed_repairable\": %d,\n"
                "     \"algorithm\": \"%s\",\n"
                "     \"repair_throughput_mb_s\": %s,\n"
                "     \"foreground_p99_ms\": %s}%s\n",
                row.spec.c_str(), row.n, row.k, row.guaranteed,
                runtime::algorithmKey(row.algorithm).c_str(),
                formatDouble(row.r.repairThroughput / 1e6).c_str(),
                formatDouble(row.r.p99LatencyMs).c_str(),
                i + 1 < wide.size() ? "," : "");
        }
        std::fprintf(json,
                     "  ],\n"
                     "  \"hedged_degraded\": [\n");
        for (std::size_t i = 0; i < hrows.size(); ++i) {
            const HedgeRow &row = hrows[i];
            std::fprintf(
                json,
                "    {\"chunks\": %d, \"hedge\": %s,\n"
                "     \"degraded_p99_ms\": %s,\n"
                "     \"degraded_mean_ms\": %s,\n"
                "     \"hedges\": %d, \"hedge_wins\": %d,\n"
                "     \"repair_time_s\": %s}%s\n",
                row.chunks, row.hedge ? "true" : "false",
                formatDouble(row.r.degradedLatency.p99 * 1e3).c_str(),
                formatDouble(row.r.degradedLatency.mean * 1e3)
                    .c_str(),
                row.r.hedgesIssued, row.r.hedgeWins,
                formatDouble(row.r.repairTime).c_str(),
                i + 1 < hrows.size() ? "," : "");
        }
        std::fprintf(json,
                     "  ],\n"
                     "  \"consistent\": %s\n"
                     "}\n",
                     chk.failed() ? "false" : "true");
        std::fclose(json);
        std::printf("wrote BENCH_runtime.json\n");
    } else {
        std::fprintf(stderr, "cannot write BENCH_runtime.json\n");
        return 1;
    }

    std::printf("\nShape checks: every registry-built code repairs "
                "all chunks (wider stripes trade repair throughput "
                "for guaranteed failures survived); hedging cuts "
                "degraded-read P99 under a pinned straggler.\n");
    return chk.exitCode();
}
