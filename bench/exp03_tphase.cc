/**
 * @file
 * Exp#3 / Figure 14: ChameleonEC repair throughput as the repair
 * phase length T_phase sweeps 10..40 s. The paper finds throughput
 * declines gently with larger T_phase (stale estimates, coarser
 * adaptation), with only ~5.4% loss from 10 s to 20 s — hence the
 * 20 s default.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // Two T_phase points; each must complete and run >= 1 phase.
        int failures = 0;
        for (double tphase : {5.0, 20.0}) {
            failures += runSmoke(
                "exp03_tphase (T=" + std::to_string(tphase) + ")",
                {Algorithm::kChameleon},
                [tphase](runtime::ExperimentConfig &cfg) {
                    cfg.chameleon.tPhase = tphase;
                },
                [](ShapeChecker &chk, Algorithm,
                   const runtime::ExperimentResult &r) {
                    chk.positive("phases run", r.phases);
                });
        }
        return failures ? 1 : 0;
    }

    // All T_phase points repair the same workload (one seedIndex).
    std::vector<runtime::SweepCell> cells;
    for (double tphase : {10.0, 20.0, 30.0, 40.0}) {
        char label[32];
        std::snprintf(label, sizeof(label), "T_phase %.0f s", tphase);
        cells.push_back(makeCell(
            label, Algorithm::kChameleon, 0,
            [tphase](runtime::ExperimentConfig &cfg) {
                // Longer repair so multiple phases actually occur.
                cfg.chunksToRepair = 200;
                cfg.chameleon.tPhase = tphase;
            }));
    }

    printHeader("Exp#3 (Fig. 14): impact of T_phase",
                "ChameleonEC, RS(10,4), YCSB-A");

    double first = 0.0;
    runCells(cells, [&](std::size_t, const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        if (first == 0.0)
            first = r.repairThroughput;
        std::printf("  %-14s: %7.1f MB/s (%+5.1f%% vs "
                    "10 s), %d phases\n",
                    cell.label.c_str(), r.repairThroughput / 1e6,
                    (r.repairThroughput / first - 1) * 100.0,
                    r.phases);
    });
    std::printf("\nShape check: throughput declines (or stays flat) "
                "as T_phase grows; the 10->20 s drop is small, "
                "matching the paper's 5.4%%.\n");
    return 0;
}
