/**
 * @file
 * Exp#10 / Figure 21: degraded reads — repairing a single requested
 * chunk on the critical path of a client read. The paper reports
 * ChameleonEC improving degraded-read throughput by 20.9-152.0%,
 * with the gain shrinking as k grows (a repair touches half the
 * testbed at k=10, leaving less scheduling freedom).
 */

#include <cstdio>

#include "bench_common.hh"
#include "ec/factory.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using analysis::Algorithm;

    init(argc, argv);
    if (smoke) {
        // Single-chunk repair: exactly one chunk, repaired fast.
        return runSmoke(
            "exp10_degraded_read",
            {Algorithm::kCr, Algorithm::kChameleon},
            [](analysis::ExperimentConfig &cfg) {
                cfg.chunksToRepair = 1;
                cfg.chameleon.tPhase = 5.0;
            },
            [](ShapeChecker &chk, Algorithm,
               const analysis::ExperimentResult &r) {
                chk.equals("single chunk repaired",
                           r.chunksRepaired, 1);
            });
    }

    printHeader("Exp#10 (Fig. 21): degraded reads",
                "single-chunk repair latency -> throughput, "
                "averaged over several requests");

    struct CodeCase
    {
        int k, m;
    };
    for (auto [k, m] : {CodeCase{6, 3}, CodeCase{8, 3},
                        CodeCase{10, 4}}) {
        std::printf("RS(%d,%d):\n", k, m);
        double cham = 0;
        Summary base;
        for (auto algo : comparisonAlgorithms()) {
            // Average the degraded-read time over a few single-chunk
            // repairs (one chunk per run, distinct seeds).
            Summary tput;
            for (uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
                auto cfg = defaultConfig();
                cfg.code = ec::makeRs(k, m);
                cfg.chunksToRepair = 1;
                cfg.seed = seed;
                // A degraded read should start immediately, not wait
                // for a full phase.
                cfg.chameleon.tPhase = 5.0;
                auto r = runExperiment(algo, cfg);
                tput.add(r.repairThroughput);
            }
            std::printf("  %-16s %7.1f MB/s\n",
                        analysis::algorithmName(algo).c_str(),
                        tput.mean / 1e6);
            if (algo == Algorithm::kChameleon)
                cham = tput.mean;
            else
                base.add(tput.mean);
        }
        std::printf("  ChameleonEC vs baseline mean: %+.1f%%\n",
                    (cham / base.mean - 1) * 100.0);
    }
    std::printf("\nShape check: the improvement shrinks as k grows "
                "(paper: +59.1%% at k=6 vs +35.7%% at k=10).\n");
    return 0;
}
