/**
 * @file
 * Exp#10 / Figure 21: degraded reads — repairing a single requested
 * chunk on the critical path of a client read. The paper reports
 * ChameleonEC improving degraded-read throughput by 20.9-152.0%,
 * with the gain shrinking as k grows (a repair touches half the
 * testbed at k=10, leaving less scheduling freedom).
 */

#include <cstdio>

#include "bench_common.hh"
#include "ec/factory.hh"

int
main(int argc, char **argv)
{
    using namespace chameleon;
    using namespace chameleon::bench;
    using runtime::Algorithm;

    init(argc, argv);
    if (opts().smoke) {
        // Single-chunk repair: exactly one chunk, repaired fast.
        return runSmoke(
            "exp10_degraded_read",
            {Algorithm::kCr, Algorithm::kChameleon},
            [](runtime::ExperimentConfig &cfg) {
                cfg.chunksToRepair = 1;
                cfg.chameleon.tPhase = 5.0;
            },
            [](ShapeChecker &chk, Algorithm,
               const runtime::ExperimentResult &r) {
                chk.equals("single chunk repaired",
                           r.chunksRepaired, 1);
            });
    }

    // Per code: every algorithm averaged over the same few
    // single-chunk repairs; repetition j of every algorithm shares a
    // seedIndex (same request, different strategy).
    struct CodeCase
    {
        int k, m;
    };
    const std::vector<CodeCase> codes = {{6, 3}, {8, 3}, {10, 4}};
    const std::vector<uint64_t> rep_seeds = {11, 22, 33, 44};
    std::vector<runtime::SweepCell> cells;
    for (std::size_t c = 0; c < codes.size(); ++c) {
        auto [k, m] = codes[c];
        for (auto algo : comparisonAlgorithms()) {
            for (std::size_t j = 0; j < rep_seeds.size(); ++j) {
                char label[64];
                std::snprintf(label, sizeof(label),
                              "RS(%d,%d) / %s / rep %zu", k, m,
                              runtime::algorithmName(algo).c_str(),
                              j);
                cells.push_back(makeCell(
                    label, algo,
                    static_cast<int>(c * rep_seeds.size() + j),
                    [&, k, m, j](runtime::ExperimentConfig &cfg) {
                        cfg.code = ec::makeRs(k, m);
                        cfg.chunksToRepair = 1;
                        cfg.seed = rep_seeds[j];
                        // A degraded read should start immediately,
                        // not wait for a full phase.
                        cfg.chameleon.tPhase = 5.0;
                    }));
            }
        }
    }

    printHeader("Exp#10 (Fig. 21): degraded reads",
                "single-chunk repair latency -> throughput, "
                "averaged over several requests");

    double cham = 0;
    Summary rep_tput, base;
    std::size_t reps = rep_seeds.size();
    std::size_t per_code = comparisonAlgorithms().size() * reps;
    runCells(cells, [&](std::size_t i,
                        const runtime::SweepCell &cell,
                        const runtime::ExperimentResult &r) {
        if (i % per_code == 0) {
            auto [k, m] = codes[i / per_code];
            std::printf("RS(%d,%d):\n", k, m);
            cham = 0;
            base = Summary();
        }
        rep_tput.add(r.repairThroughput);
        if (i % reps != reps - 1)
            return;
        // Last repetition of this algorithm: print its average.
        std::printf("  %-16s %7.1f MB/s\n",
                    runtime::algorithmName(cell.algorithm).c_str(),
                    rep_tput.mean / 1e6);
        if (cell.algorithm == Algorithm::kChameleon)
            cham = rep_tput.mean;
        else
            base.add(rep_tput.mean);
        rep_tput = Summary();
        if (i % per_code == per_code - 1)
            std::printf("  ChameleonEC vs baseline mean: %+.1f%%\n",
                        (cham / base.mean - 1) * 100.0);
    });
    std::printf("\nShape check: the improvement shrinks as k grows "
                "(paper: +59.1%% at k=6 vs +35.7%% at k=10).\n");
    return 0;
}
